"""The experiment service: REST resources over the job queue and run store.

A stdlib-only HTTP layer (``http.server.ThreadingHTTPServer`` — one thread
per connection, no third-party web framework) exposing the reproduction as
a traffic-facing system.  The serving motif is the POD reduced-order-model
pattern: repeated parameter points are answered from the content-addressed
:class:`~repro.store.RunStore` at disk-read speed while the full simulator
fills cache misses through the :class:`~repro.service.jobs.JobQueue`.

Resources (all JSON; non-finite floats travel as ``encode_nonfinite``
tags, which :class:`~repro.service.client.ServiceClient` decodes back):

========  ==========================  =========================================
method    path                        behaviour
========  ==========================  =========================================
POST      ``/v1/runs``                submit ``{"experiment", "params",
                                      "execution"}``; ``200`` immediately with
                                      the artifact when the store already holds
                                      the fingerprint, else ``202`` with a job
                                      id (duplicate in-flight submissions join
                                      the existing job)
GET       ``/v1/runs``                list job manifests
GET       ``/v1/runs/<job-id>``       poll one job; the artifact payload is
                                      attached once the state is ``done``
DELETE    ``/v1/runs/<job-id>``       cancel a *queued* job (``409`` otherwise)
GET       ``/v1/experiments``         the experiment registry, parameters and
                                      capability flags included
GET       ``/v1/store/<fp-prefix>``   fetch a stored artifact by fingerprint
                                      prefix (``409`` lists the matches when
                                      ambiguous)
GET       ``/healthz``                liveness + queue depth + degraded /
                                      recovery status
GET       ``/metrics``                request counts, queue depth, cache hit
                                      rate, per-spec latency histograms
========  ==========================  =========================================

Error mapping is uniform: unknown experiment/job/fingerprint → ``404``,
invalid body/parameters/execution options → ``400``, ambiguous prefix or
un-cancellable job → ``409``, a saturated queue → ``429`` with a
``Retry-After`` header, all with ``{"error": <message>}`` bodies carrying
the underlying :class:`~repro.errors.ExperimentError` text.

**Crash safety and graceful degradation.**  The service journals every
job transition through the :class:`~repro.service.journal.JobJournal` and
replays it at startup (:meth:`~repro.service.jobs.JobQueue.recover`), so
jobs in flight when a previous process died are re-enqueued — or, when
their artifact already made it into the store, served as cache hits —
under their original ids.  A store or journal write failure flips the
service to **degraded compute-only** mode: runs still execute and return
results, persistence is skipped, and ``/healthz`` answers ``"degraded"``
with the reason (HTTP 200 — the process is alive and serving; degraded is
a state to alert on, not an outage).  SIGTERM triggers a graceful drain:
running jobs finish and persist, still-queued jobs stay journaled for the
next process.

:class:`ExperimentService` holds all behaviour; the request handler only
parses paths and moves JSON, so the service logic is unit-testable without
sockets.  :func:`create_server` binds a server (``port=0`` = ephemeral,
used by tests and benchmarks); :func:`serve` is the blocking entry point
behind ``repro-flip serve``.
"""

from __future__ import annotations

import json
import math
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import urlparse

from ..api.config import ExecutionConfig
from ..api.run import resolve_run_inputs
from ..api.spec import experiment_ids, iter_specs
from ..errors import ExperimentError
from ..store import RunArtifact, RunStore, encode_nonfinite
from ..testing import chaos
from .jobs import JobQueue, JobState, QueueSaturated
from .journal import JobJournal, revive_literals

__all__ = ["ServiceMetrics", "ExperimentService", "create_server", "serve"]

#: Upper edges of the latency histogram buckets (seconds); the last bucket
#: is unbounded.  Spans sub-millisecond cache hits to multi-minute sweeps.
LATENCY_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)

#: Cap on distinct per-spec latency histograms; overflow aggregates under
#: ``"_other"`` so ``/metrics`` memory stays bounded no matter how many
#: spec ids flow past (the registry holds ~a dozen, but the cap makes the
#: bound structural rather than incidental).
MAX_LATENCY_SPECS = 32


class ServiceMetrics:
    """Thread-safe service counters surfaced by ``GET /metrics``.

    Tracks request counts per route and status class, cache outcomes
    (immediate store hits, deduplicated joins, job-level hits/misses) and
    per-spec latency histograms over :data:`LATENCY_BUCKETS`.  Everything
    is monotonic since service start; :meth:`snapshot` renders the JSON
    body.
    """

    def __init__(self) -> None:
        """Start all counters at zero."""
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._responses: Dict[str, int] = {}
        self._cache: Dict[str, int] = {
            "hit": 0, "miss": 0, "deduplicated": 0, "failed": 0, "shed": 0,
        }
        self._latency: Dict[str, Dict[str, Any]] = {}

    def observe_request(self, route: str, status: int) -> None:
        """Count one handled request against its route and status code."""
        with self._lock:
            self._requests[route] = self._requests.get(route, 0) + 1
            key = str(status)
            self._responses[key] = self._responses.get(key, 0) + 1

    def observe_cache(self, outcome: str) -> None:
        """Count one submission outcome (``hit``/``miss``/``deduplicated``/``failed``)."""
        with self._lock:
            self._cache[outcome] = self._cache.get(outcome, 0) + 1

    def observe_latency(self, spec_id: str, seconds: float) -> None:
        """Add one completed request's latency to its spec's histogram.

        At most :data:`MAX_LATENCY_SPECS` distinct spec histograms are
        kept; later spec ids fold into an ``"_other"`` aggregate so the
        metrics footprint is fixed-size regardless of traffic shape.
        """
        with self._lock:
            if spec_id not in self._latency and len(self._latency) >= MAX_LATENCY_SPECS:
                spec_id = "_other"
            histogram = self._latency.setdefault(
                spec_id,
                {"buckets": list(LATENCY_BUCKETS), "counts": [0] * (len(LATENCY_BUCKETS) + 1),
                 "sum_seconds": 0.0, "count": 0},
            )
            slot = len(LATENCY_BUCKETS)
            for index, edge in enumerate(LATENCY_BUCKETS):
                if seconds <= edge:
                    slot = index
                    break
            histogram["counts"][slot] += 1
            histogram["sum_seconds"] += seconds
            histogram["count"] += 1

    def snapshot(self, queue_depth: int, running: int) -> Dict[str, Any]:
        """The ``GET /metrics`` body: counters plus live queue gauges.

        ``cache.hit_rate`` counts deduplicated joins as hits — neither cost
        a simulation — over all resolved submissions.
        """
        with self._lock:
            served = self._cache["hit"] + self._cache["deduplicated"]
            resolved = served + self._cache["miss"]
            return {
                "requests": dict(sorted(self._requests.items())),
                "responses": dict(sorted(self._responses.items())),
                "queue": {"depth": queue_depth, "running": running},
                "cache": {
                    **self._cache,
                    "hit_rate": round(served / resolved, 6) if resolved else None,
                },
                "latency_seconds": {
                    spec: dict(histogram) for spec, histogram in sorted(self._latency.items())
                },
            }


def artifact_payload(artifact: RunArtifact) -> Dict[str, Any]:
    """The JSON body serving one run artifact (report dict + rendered text).

    ``rendered`` is the exact ``report.render()`` text — byte-identical
    between a computed run and a later cache hit, which is what the CI
    service gate asserts.
    """
    return {
        "spec_id": artifact.spec_id,
        "fingerprint": artifact.fingerprint,
        "version": artifact.version,
        "wall_time_seconds": artifact.wall_time_seconds,
        "parameters": artifact.parameters,
        "execution": artifact.execution,
        "report": artifact.report.to_dict(),
        "rendered": artifact.report.render(),
    }


class ExperimentService:
    """All service behaviour behind the HTTP layer (socket-free, testable).

    Owns the :class:`~repro.store.RunStore`, the
    :class:`~repro.service.jobs.JobQueue` and the
    :class:`ServiceMetrics`; every handler method returns ``(status_code,
    body_dict)`` and never raises for client errors — those are mapped to
    4xx bodies here, in one place.
    """

    def __init__(
        self,
        store_root: Union[str, Path],
        *,
        workers: int = 2,
        run: Optional[Callable[..., RunArtifact]] = None,
        max_queued: Optional[int] = None,
        journal: bool = True,
    ):
        """Wire store, journal, queue and metrics together, then recover.

        With ``journal=True`` (the default) a
        :class:`~repro.service.journal.JobJournal` is attached at the store
        root and its pending entries are replayed **before** the service
        accepts traffic — jobs a crashed predecessor left queued or
        running re-enter the queue (or resolve as store hits) under their
        original ids.  ``max_queued`` bounds the waiting queue; beyond it
        submissions are shed with ``429``.
        """
        self.store = RunStore(store_root)
        self.metrics = ServiceMetrics()
        self._degraded_lock = threading.Lock()
        self.degraded_reason: Optional[str] = None
        self.journal = JobJournal(self.store.root, on_error=self._degrade) if journal else None
        self.queue = JobQueue(
            store_root,
            workers=workers,
            run=run,
            on_finish=self._record_finished_job,
            journal=self.journal,
            max_queued=max_queued,
        )
        self.recovery = self.queue.recover(self.store)
        if self.journal is not None and self.recovery.total:
            # Compact the replayed history; a terminal line lost to the
            # (benign) rewrite race merely replays as a store hit next time.
            self.journal.checkpoint()
        self.started_at = time.time()

    def close(self, *, drain: bool = False) -> None:
        """Shut the job queue down (blocks until workers drain).

        ``drain=True`` is the SIGTERM contract: running jobs finish and
        persist, still-queued jobs are left journaled for the successor
        process instead of being started against a shutdown deadline.  The
        journal is checkpointed either way so the next startup replays a
        compact file.
        """
        self.queue.close(finish_queued=not drain)
        if self.journal is not None:
            self.journal.checkpoint()

    # ----------------------------------------------------------- resources

    def submit_run(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/runs``: immediate hit (200), new job or join (202).

        The request body must be ``{"experiment": <id>, "params": {...},
        "execution": {...}}`` (both mappings optional).  Everything is
        validated *here*, at submission time — unknown experiment (404),
        unknown parameter or execution option (400) — so a job can only
        fail inside a worker for genuine execution reasons.
        """
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        spec_id = payload.get("experiment")
        if not isinstance(spec_id, str) or not spec_id:
            return 400, {"error": "request body needs an 'experiment' id (e.g. \"E1\")"}
        if spec_id not in experiment_ids():
            return 404, {
                "error": f"unknown experiment {spec_id!r}",
                "experiments": list(experiment_ids()),
            }
        params = payload.get("params") or {}
        execution = payload.get("execution") or {}
        if not isinstance(params, dict):
            return 400, {"error": "'params' must be a JSON object of parameter overrides"}
        if not isinstance(execution, dict):
            return 400, {"error": "'execution' must be a JSON object of execution options"}
        overrides = {key: revive_literals(value) for key, value in params.items()}
        try:
            config = ExecutionConfig.for_service(self.store.root, execution)
            resolved = resolve_run_inputs(spec_id, config=config, **overrides)
        except ExperimentError as error:
            return 400, {"error": str(error)}

        if self.store.contains(resolved.fingerprint):
            try:
                artifact = self.store.get(resolved.fingerprint)
            except ExperimentError as error:  # corrupt artifact: surface, don't mask
                return 500, {"error": str(error)}
            artifact.execution["cache"] = "hit"
            self.metrics.observe_cache("hit")
            self.metrics.observe_latency(spec_id, 0.0)
            return 200, {
                "status": JobState.DONE,
                "cache": "hit",
                "fingerprint": resolved.fingerprint,
                "job_id": None,
                "result": artifact_payload(artifact),
            }

        try:
            job, created = self.queue.submit(
                spec_id,
                resolved.fingerprint,
                resolved.parameters,
                config=config,
                overrides=overrides,
                raw_params=params,
                raw_execution=execution,
            )
        except QueueSaturated as error:
            self.metrics.observe_cache("shed")
            return 429, {
                "error": str(error),
                "retry_after": error.retry_after,
                "queue_depth": error.depth,
                "max_queued": error.max_queued,
            }
        if not created:
            self.metrics.observe_cache("deduplicated")
        body = job.manifest()
        body["status"] = body.pop("state")
        body["deduplicated"] = not created
        return 202, body

    def job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/runs/<id>``: the job manifest (+ result when done)."""
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        body = self.queue.manifest(job_id)
        body["status"] = body.pop("state")
        if job.state == JobState.DONE and job.artifact is not None:
            body["result"] = artifact_payload(job.artifact)
        return 200, body

    def cancel_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """``DELETE /v1/runs/<id>``: cancel a queued job (409 otherwise)."""
        try:
            cancelled = self.queue.cancel(job_id)
        except ExperimentError as error:
            return 404, {"error": str(error)}
        if not cancelled:
            state = self.queue.get(job_id).state
            return 409, {
                "error": f"job {job_id} is {state}; only queued jobs can be cancelled",
                "status": state,
            }
        return 200, {"job_id": job_id, "status": JobState.CANCELLED}

    def list_jobs(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/runs``: every tracked job's manifest, oldest first."""
        return 200, {"jobs": self.queue.jobs()}

    def list_experiments(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/experiments``: the registry with parameters and flags."""
        experiments: List[Dict[str, Any]] = []
        for spec in iter_specs():
            experiments.append(
                {
                    "id": spec.experiment_id,
                    "title": spec.title,
                    "claim": spec.claim,
                    "supports_batch": spec.supports_batch,
                    "supports_jobs": spec.supports_runner or spec.supports_point_jobs,
                    "parameters": [
                        {
                            "name": parameter.name,
                            "default": parameter.default,
                            "description": parameter.description,
                        }
                        for parameter in spec.parameters
                    ],
                }
            )
        return 200, {"experiments": experiments}

    def store_lookup(self, prefix: str) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/store/<prefix>``: artifact by fingerprint prefix.

        404 when nothing matches; 409 when the prefix is ambiguous, with
        the store's match-listing error text so the caller can extend the
        prefix without guessing.
        """
        try:
            fingerprint = self.store.resolve_prefix(prefix)
        except ExperimentError as error:
            status = 409 if "ambiguous" in str(error) else 404
            return status, {"error": str(error)}
        try:
            artifact = self.store.get(fingerprint)
        except ExperimentError as error:
            return 500, {"error": str(error)}
        return 200, {"fingerprint": fingerprint, "result": artifact_payload(artifact)}

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``: liveness, queue gauges, degraded + recovery state.

        Degraded mode answers ``200`` with ``"status": "degraded"`` and the
        reason — the process is alive and computing; only durability is
        impaired.  A 5xx here would make monitors restart a service that is
        still doing useful work.
        """
        degraded = self.degraded_reason
        body = {
            "status": "ok" if degraded is None else "degraded",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue_depth": self.queue.depth(),
            "running": self.queue.running(),
            "workers": self.queue.workers,
            "store": str(self.store.root),
            "journal": self.journal is not None and self.journal.disabled_reason is None,
            "recovery": self.recovery.summary(),
        }
        if degraded is not None:
            body["degraded_reason"] = degraded
        return 200, body

    def metrics_payload(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /metrics``: the counters snapshot plus service status."""
        body = self.metrics.snapshot(self.queue.depth(), self.queue.running())
        degraded = self.degraded_reason
        body["service"] = {
            "status": "ok" if degraded is None else "degraded",
            "degraded_reason": degraded,
            "recovery": self.recovery.summary(),
        }
        return 200, body

    # ------------------------------------------------------------ internals

    def _degrade(self, reason: str) -> None:
        """Flip to degraded compute-only mode (first reason wins, sticky)."""
        with self._degraded_lock:
            if self.degraded_reason is None:
                self.degraded_reason = reason

    def _record_finished_job(self, job: Any) -> None:
        """Queue finish callback: fold job outcomes into the metrics.

        Also where store-write failures surface: a job that computed but
        could not persist carries ``execution["store_error"]`` (see
        :func:`repro.api.run._put_or_degrade`), which flips the service
        degraded.
        """
        if job.state == JobState.DONE:
            self.metrics.observe_cache(job.cache if job.cache in ("hit", "miss") else "miss")
            if job.finished_at is not None:
                self.metrics.observe_latency(job.spec_id, job.finished_at - job.submitted_at)
            if job.artifact is not None:
                store_error = job.artifact.execution.get("store_error")
                if store_error:
                    self._degrade(str(store_error))
        elif job.state == JobState.FAILED:
            self.metrics.observe_cache("failed")


#: Routes: (method, compiled path pattern) -> service method name + groups.
_ROUTES: Tuple[Tuple[str, "re.Pattern[str]", str], ...] = (
    ("POST", re.compile(r"^/v1/runs/?$"), "submit_run"),
    ("GET", re.compile(r"^/v1/runs/?$"), "list_jobs"),
    ("GET", re.compile(r"^/v1/runs/(?P<job_id>[A-Za-z0-9._-]+)$"), "job_status"),
    ("DELETE", re.compile(r"^/v1/runs/(?P<job_id>[A-Za-z0-9._-]+)$"), "cancel_job"),
    ("GET", re.compile(r"^/v1/experiments/?$"), "list_experiments"),
    ("GET", re.compile(r"^/v1/store/(?P<prefix>[0-9a-f]+)$"), "store_lookup"),
    ("GET", re.compile(r"^/healthz$"), "health"),
    ("GET", re.compile(r"^/metrics$"), "metrics_payload"),
)


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: route, parse JSON, delegate to the service."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        """Dispatch GET requests through the route table."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        """Dispatch POST requests through the route table."""
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        """Dispatch DELETE requests through the route table."""
        self._dispatch("DELETE")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Access logging, only when the server was created verbose."""
        if getattr(self.server, "verbose", False):  # pragma: no cover - log formatting
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _dispatch(self, method: str) -> None:
        """Match the route table, call the service, write the JSON reply."""
        service: ExperimentService = self.server.service  # type: ignore[attr-defined]
        path = urlparse(self.path).path
        route_label = path
        try:
            for route_method, pattern, handler_name in _ROUTES:
                if route_method != method:
                    continue
                match = pattern.match(path)
                if match is None:
                    continue
                route_label = f"{method} {pattern.pattern}"
                handler = getattr(service, handler_name)
                if handler_name == "submit_run":
                    body, parse_error = self._read_json_body()
                    if parse_error is not None:
                        status, reply = 400, {"error": parse_error}
                    else:
                        status, reply = handler(body)
                else:
                    status, reply = handler(**match.groupdict())
                break
            else:
                status, reply = 404, {"error": f"no such resource: {method} {path}"}
        except Exception as error:  # pragma: no cover - last-resort 500
            status, reply = 500, {"error": f"{type(error).__name__}: {error}"}
        service.metrics.observe_request(route_label, status)
        self._write_json(status, reply)

    def _read_json_body(self) -> Tuple[Any, Optional[str]]:
        """Read and parse the request body; ``(None, message)`` on bad JSON."""
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            return None, "invalid Content-Length header"
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None, "request body must be a JSON object"
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, f"request body is not valid JSON: {error}"

    def _write_json(self, status: int, body: Dict[str, Any]) -> None:
        """Serialise ``body`` (non-finite floats tagged) and send it.

        A shed (``429``) or unavailable (``503``) reply whose body carries
        ``retry_after`` also gets the standard ``Retry-After`` header
        (integer seconds, rounded up), so generic HTTP clients back off
        without parsing the JSON.
        """
        encoded = json.dumps(encode_nonfinite(body), allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if status in (429, 503) and isinstance(body, dict):
            retry_after = body.get("retry_after")
            if isinstance(retry_after, (int, float)) and retry_after > 0:
                self.send_header("Retry-After", str(int(math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(encoded)


def create_server(
    store_root: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    run: Optional[Callable[..., RunArtifact]] = None,
    verbose: bool = False,
    max_queued: Optional[int] = None,
    journal: bool = True,
) -> ThreadingHTTPServer:
    """Bind an experiment-service HTTP server (not yet serving).

    ``port=0`` binds an OS-assigned ephemeral port — read the actual one
    from ``server.server_address[1]``.  The returned server carries the
    :class:`ExperimentService` as ``server.service``; call
    ``serve_forever()`` to serve (typically from a thread in tests) and
    ``server.service.close()`` after ``shutdown()`` to drain the workers.
    Journal recovery runs inside the :class:`ExperimentService`
    constructor, i.e. before the first request can land.
    """
    server = ThreadingHTTPServer((host, port), _RequestHandler)
    server.daemon_threads = True
    server.service = ExperimentService(  # type: ignore[attr-defined]
        store_root, workers=workers, run=run, max_queued=max_queued, journal=journal
    )
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    store_root: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 2,
    verbose: bool = True,
    max_queued: Optional[int] = None,
    journal: bool = True,
) -> int:
    """Blocking entry point behind ``repro-flip serve``.

    Prints the bound endpoint (flushed, so a supervising process — e.g.
    the CI smoke gate — can scrape the ephemeral port), serves until
    interrupted, then drains the job queue.  SIGTERM (when installable,
    i.e. serving from the main thread) triggers the graceful drain:
    accepting stops, running jobs finish and persist, queued jobs stay
    journaled for the next process.  ``REPRO_CHAOS`` fault points are
    armed here so the chaos harness can torment a real subprocess.
    """
    chaos.install_from_env()
    server = create_server(
        store_root, host=host, port=port, workers=workers, verbose=verbose,
        max_queued=max_queued, journal=journal,
    )
    service: ExperimentService = server.service  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    recovered = service.recovery.summary()
    suffix = f", recovered: {recovered}" if service.recovery.total else ""
    print(f"repro experiment service listening on http://{bound_host}:{bound_port} "
          f"(store: {Path(store_root)}, workers: {max(1, int(workers))}{suffix})", flush=True)

    draining = threading.Event()

    def _drain(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
        draining.set()
        # shutdown() blocks until serve_forever()'s loop exits, which
        # cannot happen while this handler occupies the main thread — so
        # trigger it from a helper thread and return immediately.
        threading.Thread(target=server.shutdown, name="repro-service-drain", daemon=True).start()

    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - not on the main thread
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close(drain=draining.is_set())
        if previous is not None:  # pragma: no branch - restore for embedders
            signal.signal(signal.SIGTERM, previous)
    if draining.is_set():  # pragma: no cover - signal path
        print("repro experiment service drained: running jobs persisted, "
              "queued jobs left journaled for recovery", flush=True)
    return 0
