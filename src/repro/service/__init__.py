"""repro.service — the experiment-serving layer (HTTP API + async job queue).

The "millions of users" unlock of ROADMAP item 1, layered strictly *on top
of* the unified API front door: a stdlib-only HTTP service that turns
:func:`repro.api.run_experiment` + the content-addressed
:class:`~repro.store.RunStore` into a traffic-facing system where repeated
parameter points are served from disk in sub-millisecond time and only
genuinely new requests pay for simulation.

* :mod:`repro.service.jobs` — the in-memory :class:`JobQueue`: a bounded
  worker-thread pool, job states ``queued → running → done/failed/
  cancelled``, deterministic job ids, fingerprint-keyed duplicate
  coalescing, ``max_queued`` backpressure (:class:`QueueSaturated`),
  per-job manifests, and journal-replay crash recovery
  (:meth:`JobQueue.recover`);
* :mod:`repro.service.journal` — :class:`JobJournal`, the append-only
  ``journal.jsonl`` durability log replayed on startup so a crash loses
  no submitted work;
* :mod:`repro.service.app` — the REST resources
  (``POST/GET/DELETE /v1/runs``, ``GET /v1/experiments``,
  ``GET /v1/store/<prefix>``, ``/healthz``, ``/metrics``) on
  ``http.server.ThreadingHTTPServer``, behind the socket-free
  :class:`ExperimentService` — including 429 load shedding, degraded
  compute-only mode and SIGTERM draining;
* :mod:`repro.service.client` — :class:`ServiceClient`, the typed
  submit/wait/result client (with :class:`RetryPolicy` backoff) the
  tests, benchmarks and CI gate drive.

Serve from the CLI (``repro-flip serve --store runs/store --port 8000``)
or embed::

    from repro.service import ServiceClient, create_server

    server = create_server("runs/store", port=0, workers=2)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(port=server.server_address[1])
    print(client.run("E1", params={"epsilon": 0.3})["result"]["rendered"])
"""

from __future__ import annotations

from .app import ExperimentService, ServiceMetrics, create_server, serve
from .client import RetryPolicy, ServiceClient, ServiceError
from .jobs import Job, JobQueue, JobState, QueueSaturated, RecoveryReport
from .journal import JobJournal

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "QueueSaturated",
    "RecoveryReport",
    "JobJournal",
    "ExperimentService",
    "ServiceMetrics",
    "create_server",
    "serve",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
]
