"""The service's async job queue: bounded workers over :func:`run_experiment`.

The queue's *results* are durable in the content-addressed
:class:`~repro.store.RunStore` (every completed run is persisted under its
fingerprint before the job reports ``done``) and its *in-flight state* is
durable in the :class:`~repro.service.journal.JobJournal`: every
transition appends one line to ``journal.jsonl`` beside the store, and
:meth:`JobQueue.recover` replays the journal on startup, re-enqueueing
whatever a crash interrupted under the original job ids.  A replayed job
that had in fact already persisted its artifact resolves as a store hit —
recovery never repeats a simulation.

Life cycle of a job::

    queued ──> running ──> done
       │           └─────> failed
       └─────> cancelled

* **Deterministic job ids.**  ``<submission-sequence>-<fingerprint[:12]>``
  — e.g. ``000003-9f2c41a0b7d1`` — so ids are stable across identical
  submission orders, sort chronologically, and carry the content address
  they will resolve to.  Recovery continues the sequence past everything
  ever journaled, so ids are never reused across a crash.
* **Duplicate coalescing.**  :meth:`JobQueue.submit` keys in-flight jobs
  by fingerprint: a second identical submission while the first is queued
  or running *joins* the existing job (same id, ``created=False``) instead
  of enqueueing a duplicate.  The race the in-memory map cannot see (a
  duplicate arriving just as the original leaves the map) is closed one
  layer down by :func:`repro.api.run_experiment`'s double-checked
  per-fingerprint compute lock — either way the simulation runs once.
* **Backpressure.**  ``max_queued`` bounds how many jobs may *wait*;
  :meth:`JobQueue.submit` raises :class:`QueueSaturated` beyond it, which
  the service maps to ``429`` + ``Retry-After`` — shedding load at the
  door instead of accepting unbounded work and degrading everyone.
* **Per-job manifests.**  :meth:`JobQueue.manifest` snapshots everything a
  poll needs: state, fingerprint, cache outcome (``hit``/``miss`` once
  finished), timestamps and the error text of a failed run.

Workers are daemon threads; :meth:`JobQueue.close` drains them cleanly
(one sentinel per worker) and is idempotent.  ``close(finish_queued=
False)`` is the SIGTERM drain: running jobs finish, still-queued jobs are
*left journaled* for the next process to recover instead of being started.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..api.config import ExecutionConfig
from ..api.run import resolve_run_inputs, run_experiment
from ..errors import ExperimentError
from ..store import RunArtifact, RunStore
from ..testing import chaos
from .journal import JobJournal, revive_literals

__all__ = ["JobState", "Job", "JobQueue", "QueueSaturated", "RecoveryReport"]


class QueueSaturated(ExperimentError):
    """Submission refused: the queue already holds ``max_queued`` waiting jobs.

    The service maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` hint — the graceful-degradation contract is that an
    overloaded service *sheds* load visibly rather than accepting work it
    cannot start.
    """

    def __init__(self, depth: int, max_queued: int, retry_after: float):
        """Carry the saturation numbers the 429 body reports."""
        super().__init__(
            f"job queue is saturated ({depth} queued >= max_queued={max_queued}); "
            f"retry after {retry_after:g}s"
        )
        self.depth = depth
        self.max_queued = max_queued
        self.retry_after = retry_after


class JobState:
    """The job life-cycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States in which a job still occupies its fingerprint (dedup key).
    ACTIVE = (QUEUED, RUNNING)
    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted experiment run tracked by the :class:`JobQueue`.

    Mutable fields (``state``, timestamps, ``artifact``, ``error``,
    ``cache``) are only written under the owning queue's lock; read a
    consistent snapshot via :meth:`JobQueue.manifest` rather than the raw
    fields.
    """

    job_id: str
    spec_id: str
    fingerprint: str
    parameters: Dict[str, Any]
    batch: bool
    config: ExecutionConfig = field(repr=False, default=None)  # type: ignore[assignment]
    overrides: Dict[str, Any] = field(repr=False, default_factory=dict)
    raw_params: Dict[str, Any] = field(repr=False, default_factory=dict)
    raw_execution: Dict[str, Any] = field(repr=False, default_factory=dict)
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cache: Optional[str] = None
    error: Optional[str] = None
    recovered: bool = False
    artifact: Optional[RunArtifact] = field(repr=False, default=None)

    def manifest(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the job (no artifact payload — poll bodies
        attach that separately so a large report is serialised only when
        the job is actually done)."""
        elapsed = (self.finished_at or time.time()) - self.submitted_at
        return {
            "job_id": self.job_id,
            "spec_id": self.spec_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "batch": self.batch,
            "parameters": dict(self.parameters),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": round(elapsed, 6),
            "cache": self.cache,
            "error": self.error,
            "recovered": self.recovered,
        }


@dataclass
class RecoveryReport:
    """What :meth:`JobQueue.recover` did with the journal's pending jobs.

    ``replayed`` lists job ids re-enqueued for execution;
    ``already_stored`` the ids whose artifact the store already held (the
    crash hit between persist and the ``finish`` journal line — registered
    done without recompute); ``failed`` the ids whose journaled payload no
    longer resolves.  All three carry *original* job ids.
    """

    replayed: List[str] = field(default_factory=list)
    already_stored: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """How many pending journal records recovery handled."""
        return len(self.replayed) + len(self.already_stored) + len(self.failed)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe counts for ``/healthz`` and startup logging."""
        return {
            "replayed": len(self.replayed),
            "already_stored": len(self.already_stored),
            "failed": len(self.failed),
        }


class JobQueue:
    """Bounded worker-thread pool executing submitted experiment runs.

    Parameters
    ----------
    store_root:
        The service's run-store root; every job's
        :class:`~repro.api.config.ExecutionConfig` points here, so results
        persist (and duplicate computes dedup) through the normal
        :func:`~repro.api.run_experiment` store path.
    workers:
        Worker-thread count (clamped to at least 1).  This bounds how many
        simulations execute concurrently; submissions beyond it queue.
    run:
        The execution callable, ``run(spec_id, config=..., **overrides) ->
        RunArtifact``.  Defaults to :func:`repro.api.run_experiment`; tests
        inject stubs to script slow/failing runs.
    on_finish:
        Optional callback invoked (outside the queue lock) with each job
        that reaches a terminal state — the service wires its metrics here.
    journal:
        Optional :class:`~repro.service.journal.JobJournal`; when given,
        every transition is journaled and :meth:`recover` can replay a
        crashed predecessor's in-flight work.
    max_queued:
        Optional bound on *waiting* jobs; a submission beyond it raises
        :class:`QueueSaturated` (running jobs and dedup joins don't count).
    retry_after:
        The ``Retry-After`` hint (seconds) carried by
        :class:`QueueSaturated` when the bound trips.
    """

    def __init__(
        self,
        store_root: Union[str, Path],
        *,
        workers: int = 2,
        run: Optional[Callable[..., RunArtifact]] = None,
        on_finish: Optional[Callable[[Job], None]] = None,
        journal: Optional[JobJournal] = None,
        max_queued: Optional[int] = None,
        retry_after: float = 1.0,
    ):
        """Start ``workers`` daemon worker threads over an empty queue."""
        if max_queued is not None and max_queued < 1:
            raise ExperimentError(f"max_queued must be at least 1, got {max_queued}")
        self.store_root = Path(store_root)
        self._run = run if run is not None else run_experiment
        self._on_finish = on_finish
        self.journal = journal
        self.max_queued = max_queued
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._in_flight: Dict[str, str] = {}  # fingerprint -> active job id
        self._tasks: "queue_module.Queue[Optional[str]]" = queue_module.Queue()
        self._sequence = 0
        self._closed = False
        self._skip_queued = False  # SIGTERM drain: leave queued jobs journaled
        self.workers = max(1, int(workers))
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{index}", daemon=True
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ API

    def submit(
        self,
        spec_id: str,
        fingerprint: str,
        parameters: Dict[str, Any],
        *,
        config: ExecutionConfig,
        overrides: Optional[Dict[str, Any]] = None,
        raw_params: Optional[Dict[str, Any]] = None,
        raw_execution: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue a run (or join the in-flight job for its fingerprint).

        Returns ``(job, created)``: ``created=False`` means an identical
        submission was already queued or running and the caller was handed
        that job — the service reports such submissions as deduplicated.
        The caller passes inputs already resolved by
        :func:`repro.api.resolve_run_inputs`, so nothing here can fail
        validation inside a worker.  ``raw_params``/``raw_execution`` are
        the request's plain-JSON payloads, journaled with the submission so
        a crashed job can be resubmitted through the same validation path.

        A new job beyond ``max_queued`` waiting jobs raises
        :class:`QueueSaturated`; joining an in-flight duplicate is always
        allowed (it adds no work).
        """
        with self._lock:
            if self._closed:
                raise ExperimentError("the job queue is shut down; no further submissions")
            active_id = self._in_flight.get(fingerprint)
            if active_id is not None:
                return self._jobs[active_id], False
            depth = self._depth_locked()
            if self.max_queued is not None and depth >= self.max_queued:
                raise QueueSaturated(depth, self.max_queued, self.retry_after)
            self._sequence += 1
            job_id = f"{self._sequence:06d}-{fingerprint[:12]}"
            job = Job(
                job_id=job_id,
                spec_id=spec_id,
                fingerprint=fingerprint,
                parameters=dict(parameters),
                batch=bool(config.batch),
                config=config,
                overrides=dict(overrides or {}),
                raw_params=dict(raw_params or {}),
                raw_execution=dict(raw_execution or {}),
            )
            self._enqueue_locked(job)
            return job, True

    def _depth_locked(self) -> int:
        """Waiting-job count; the caller holds the queue lock."""
        return sum(1 for job in self._jobs.values() if job.state == JobState.QUEUED)

    def _enqueue_locked(self, job: Job) -> None:
        """Register and enqueue ``job`` (lock held): journal-first, then task.

        The journal line lands *before* the task becomes visible to a
        worker, so any job a worker can possibly start is already durable —
        the invariant replay relies on.
        """
        self._journal(
            "submit",
            job.job_id,
            spec_id=job.spec_id,
            fingerprint=job.fingerprint,
            params=job.raw_params,
            execution=job.raw_execution,
            recovered=job.recovered,
        )
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        self._in_flight[job.fingerprint] = job.job_id
        self._tasks.put(job.job_id)

    def get(self, job_id: str) -> Optional[Job]:
        """The job for ``job_id``, or ``None`` if the id is unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def manifest(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A consistent manifest snapshot of one job (``None`` if unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.manifest() if job is not None else None

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; returns whether the cancellation took.

        Only ``queued`` jobs are cancellable — a ``running`` simulation is
        not interrupted (it will complete and persist normally), and
        terminal jobs are past cancelling; both return ``False`` so the
        service can answer ``409``.  An unknown id raises.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ExperimentError(f"unknown job id {job_id!r}")
            if job.state != JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._release_fingerprint(job)
            finished = job
        self._journal("cancel", job_id)
        self._notify(finished)
        return True

    def depth(self) -> int:
        """How many jobs are currently waiting for a worker."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == JobState.QUEUED)

    def running(self) -> int:
        """How many jobs are currently executing on a worker."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == JobState.RUNNING)

    def jobs(self) -> List[Dict[str, Any]]:
        """Manifests of every tracked job, in submission order."""
        with self._lock:
            return [self._jobs[job_id].manifest() for job_id in self._order]

    def close(self, timeout: float = 10.0, *, finish_queued: bool = True) -> None:
        """Stop accepting submissions and drain the workers (idempotent).

        With ``finish_queued=True`` (the default) workers run every job
        already queued before exiting; a running job always finishes its
        simulation first (bounded by ``timeout`` per worker join — workers
        are daemons, so a stuck simulation never blocks interpreter exit).

        ``finish_queued=False`` is the **graceful-drain** contract behind
        SIGTERM: running jobs complete and persist, but jobs still waiting
        are *not started* — they stay ``queued`` in memory and journaled as
        submitted, so the next process against the same store recovers and
        runs them.  Draining a long backlog on a shutdown deadline would
        mean losing whichever jobs the deadline cut off; skipping hands
        them to the successor instead.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._skip_queued = not finish_queued
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def recover(self, store: Optional[RunStore] = None) -> "RecoveryReport":
        """Replay the journal and re-enqueue whatever a crash interrupted.

        For each journaled job whose last event was ``submit`` or ``start``:

        * if ``store`` already holds the job's artifact (the crash landed
          after the persist but before the ``finish`` line), the job is
          registered **already done** under its original id — a client
          polling across the restart gets the result, and no simulation or
          queue slot is spent;
        * otherwise the raw journaled payload is re-resolved through
          :func:`repro.api.resolve_run_inputs` (the same validation a fresh
          request gets) and the job re-enqueued under its original id;
        * a payload that no longer resolves (spec retired, parameter
          renamed between versions) is registered as ``failed`` with the
          resolution error — recovery surfaces problems, it never crashes
          startup.

        The job-id sequence continues past everything journaled, so ids
        are never reused.  Returns a :class:`RecoveryReport`; no-op (all
        zeros) without a journal.
        """
        report = RecoveryReport()
        if self.journal is None:
            return report
        replay = self.journal.replay()
        with self._lock:
            self._sequence = max(self._sequence, replay.max_sequence)
        for record in replay.pending:
            try:
                execution = revive_literals(record.execution)
                overrides = {
                    key: revive_literals(value) for key, value in record.params.items()
                }
                config = ExecutionConfig.for_service(self.store_root, execution)
                resolved = resolve_run_inputs(record.spec_id, config=config, **overrides)
            except ExperimentError as error:
                self._restore_terminal(record, JobState.FAILED, error=str(error))
                report.failed.append(record.job_id)
                continue
            job = Job(
                job_id=record.job_id,
                spec_id=record.spec_id,
                fingerprint=resolved.fingerprint,
                parameters=resolved.parameters,
                batch=bool(config.batch),
                config=config,
                overrides=overrides,
                raw_params=dict(record.params),
                raw_execution=dict(record.execution),
                recovered=True,
            )
            if store is not None and store.contains(resolved.fingerprint):
                try:
                    artifact = store.get(resolved.fingerprint)
                except ExperimentError:
                    artifact = None  # corrupt: fall through to recompute
                if artifact is not None:
                    artifact.execution["cache"] = "hit"
                    job.state = JobState.DONE
                    job.cache = "hit"
                    job.artifact = artifact
                    job.finished_at = time.time()
                    with self._lock:
                        self._jobs[job.job_id] = job
                        self._order.append(job.job_id)
                    self._journal("finish", job.job_id, cache="hit", recovered=True)
                    self._notify(job)
                    report.already_stored.append(job.job_id)
                    continue
            with self._lock:
                self._enqueue_locked(job)
            report.replayed.append(job.job_id)
        return report

    # ------------------------------------------------------------ internals

    def _restore_terminal(self, record: Any, state: str, *, error: Optional[str]) -> None:
        """Register a journaled job in a terminal state (recovery bookkeeping)."""
        job = Job(
            job_id=record.job_id,
            spec_id=record.spec_id,
            fingerprint=record.fingerprint,
            parameters={},
            batch=False,
            recovered=True,
        )
        job.state = state
        job.error = error
        job.finished_at = time.time()
        with self._lock:
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._journal("fail", job.job_id, error=error)
        self._notify(job)

    def _journal(self, event: str, job_id: str, **fields: Any) -> None:
        """Append one transition to the journal when one is attached."""
        if self.journal is not None:
            self.journal.record(event, job_id, **fields)

    def _release_fingerprint(self, job: Job) -> None:
        """Drop the in-flight dedup entry held by ``job`` (lock held)."""
        if self._in_flight.get(job.fingerprint) == job.job_id:
            del self._in_flight[job.fingerprint]

    def _notify(self, job: Job) -> None:
        """Invoke the finish callback outside the lock (errors swallowed —
        a metrics bug must not take a worker thread down)."""
        if self._on_finish is None:
            return
        try:
            self._on_finish(job)
        except Exception:  # pragma: no cover - defensive
            pass

    def _worker_loop(self) -> None:
        """One worker: pull job ids, execute, record outcome, repeat.

        Every transition is journaled *outside* the queue lock (the journal
        takes its own file lock; holding both invites ordering bugs).  The
        armed ``queue.worker`` chaos point fires between ``running`` and
        execution — a ``die`` action returns from the loop, simulating a
        worker thread lost mid-job exactly where the journal shows
        ``start`` with no terminal line.
        """
        while True:
            job_id = self._tasks.get()
            if job_id is None:
                return
            if self._skip_queued:
                # SIGTERM drain: leave the job queued in memory and
                # journaled as submitted for the successor process.
                continue
            with self._lock:
                job = self._jobs[job_id]
                if job.state != JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
            self._journal("start", job.job_id)
            if chaos.fire("queue.worker", job_id=job.job_id) == "die":
                return  # chaos: worker thread dies, job stuck "running"
            try:
                artifact = self._run(job.spec_id, config=job.config, **job.overrides)
            except Exception as error:  # driver/validation/backend failures
                with self._lock:
                    job.state = JobState.FAILED
                    job.error = f"{type(error).__name__}: {error}"
                    job.finished_at = time.time()
                    self._release_fingerprint(job)
                self._journal("fail", job.job_id, error=job.error)
            else:
                with self._lock:
                    job.state = JobState.DONE
                    job.artifact = artifact
                    job.cache = artifact.execution.get("cache")
                    job.finished_at = time.time()
                    self._release_fingerprint(job)
                self._journal("finish", job.job_id, cache=job.cache)
            self._notify(job)
