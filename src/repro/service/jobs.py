"""The service's async job queue: bounded workers over :func:`run_experiment`.

An in-memory queue, deliberately simple: the durable state of the service
is the content-addressed :class:`~repro.store.RunStore` (every completed
run is persisted under its fingerprint before the job reports ``done``),
so the queue itself only has to track *in-flight* work.  Restarting the
service loses queued jobs but never completed results — resubmitting the
same request after a restart is a cache hit.

Life cycle of a job::

    queued ──> running ──> done
       │           └─────> failed
       └─────> cancelled

* **Deterministic job ids.**  ``<submission-sequence>-<fingerprint[:12]>``
  — e.g. ``000003-9f2c41a0b7d1`` — so ids are stable across identical
  submission orders, sort chronologically, and carry the content address
  they will resolve to.
* **Duplicate coalescing.**  :meth:`JobQueue.submit` keys in-flight jobs
  by fingerprint: a second identical submission while the first is queued
  or running *joins* the existing job (same id, ``created=False``) instead
  of enqueueing a duplicate.  The race the in-memory map cannot see (a
  duplicate arriving just as the original leaves the map) is closed one
  layer down by :func:`repro.api.run_experiment`'s double-checked
  per-fingerprint compute lock — either way the simulation runs once.
* **Per-job manifests.**  :meth:`JobQueue.manifest` snapshots everything a
  poll needs: state, fingerprint, cache outcome (``hit``/``miss`` once
  finished), timestamps and the error text of a failed run.

Workers are daemon threads; :meth:`JobQueue.close` drains them cleanly
(one sentinel per worker) and is idempotent.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..api.config import ExecutionConfig
from ..api.run import run_experiment
from ..errors import ExperimentError
from ..store import RunArtifact

__all__ = ["JobState", "Job", "JobQueue"]


class JobState:
    """The job life-cycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States in which a job still occupies its fingerprint (dedup key).
    ACTIVE = (QUEUED, RUNNING)
    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted experiment run tracked by the :class:`JobQueue`.

    Mutable fields (``state``, timestamps, ``artifact``, ``error``,
    ``cache``) are only written under the owning queue's lock; read a
    consistent snapshot via :meth:`JobQueue.manifest` rather than the raw
    fields.
    """

    job_id: str
    spec_id: str
    fingerprint: str
    parameters: Dict[str, Any]
    batch: bool
    config: ExecutionConfig = field(repr=False, default=None)  # type: ignore[assignment]
    overrides: Dict[str, Any] = field(repr=False, default_factory=dict)
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cache: Optional[str] = None
    error: Optional[str] = None
    artifact: Optional[RunArtifact] = field(repr=False, default=None)

    def manifest(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the job (no artifact payload — poll bodies
        attach that separately so a large report is serialised only when
        the job is actually done)."""
        elapsed = (self.finished_at or time.time()) - self.submitted_at
        return {
            "job_id": self.job_id,
            "spec_id": self.spec_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "batch": self.batch,
            "parameters": dict(self.parameters),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": round(elapsed, 6),
            "cache": self.cache,
            "error": self.error,
        }


class JobQueue:
    """Bounded worker-thread pool executing submitted experiment runs.

    Parameters
    ----------
    store_root:
        The service's run-store root; every job's
        :class:`~repro.api.config.ExecutionConfig` points here, so results
        persist (and duplicate computes dedup) through the normal
        :func:`~repro.api.run_experiment` store path.
    workers:
        Worker-thread count (clamped to at least 1).  This bounds how many
        simulations execute concurrently; submissions beyond it queue.
    run:
        The execution callable, ``run(spec_id, config=..., **overrides) ->
        RunArtifact``.  Defaults to :func:`repro.api.run_experiment`; tests
        inject stubs to script slow/failing runs.
    on_finish:
        Optional callback invoked (outside the queue lock) with each job
        that reaches a terminal state — the service wires its metrics here.
    """

    def __init__(
        self,
        store_root: Union[str, Path],
        *,
        workers: int = 2,
        run: Optional[Callable[..., RunArtifact]] = None,
        on_finish: Optional[Callable[[Job], None]] = None,
    ):
        """Start ``workers`` daemon worker threads over an empty queue."""
        self.store_root = Path(store_root)
        self._run = run if run is not None else run_experiment
        self._on_finish = on_finish
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._in_flight: Dict[str, str] = {}  # fingerprint -> active job id
        self._tasks: "queue_module.Queue[Optional[str]]" = queue_module.Queue()
        self._sequence = 0
        self._closed = False
        self.workers = max(1, int(workers))
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{index}", daemon=True
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ API

    def submit(
        self,
        spec_id: str,
        fingerprint: str,
        parameters: Dict[str, Any],
        *,
        config: ExecutionConfig,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue a run (or join the in-flight job for its fingerprint).

        Returns ``(job, created)``: ``created=False`` means an identical
        submission was already queued or running and the caller was handed
        that job — the service reports such submissions as deduplicated.
        The caller passes inputs already resolved by
        :func:`repro.api.resolve_run_inputs`, so nothing here can fail
        validation inside a worker.
        """
        with self._lock:
            if self._closed:
                raise ExperimentError("the job queue is shut down; no further submissions")
            active_id = self._in_flight.get(fingerprint)
            if active_id is not None:
                return self._jobs[active_id], False
            self._sequence += 1
            job_id = f"{self._sequence:06d}-{fingerprint[:12]}"
            job = Job(
                job_id=job_id,
                spec_id=spec_id,
                fingerprint=fingerprint,
                parameters=dict(parameters),
                batch=bool(config.batch),
                config=config,
                overrides=dict(overrides or {}),
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._in_flight[fingerprint] = job_id
            self._tasks.put(job_id)
            return job, True

    def get(self, job_id: str) -> Optional[Job]:
        """The job for ``job_id``, or ``None`` if the id is unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def manifest(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A consistent manifest snapshot of one job (``None`` if unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.manifest() if job is not None else None

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; returns whether the cancellation took.

        Only ``queued`` jobs are cancellable — a ``running`` simulation is
        not interrupted (it will complete and persist normally), and
        terminal jobs are past cancelling; both return ``False`` so the
        service can answer ``409``.  An unknown id raises.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ExperimentError(f"unknown job id {job_id!r}")
            if job.state != JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._release_fingerprint(job)
            finished = job
        self._notify(finished)
        return True

    def depth(self) -> int:
        """How many jobs are currently waiting for a worker."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == JobState.QUEUED)

    def running(self) -> int:
        """How many jobs are currently executing on a worker."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == JobState.RUNNING)

    def jobs(self) -> List[Dict[str, Any]]:
        """Manifests of every tracked job, in submission order."""
        with self._lock:
            return [self._jobs[job_id].manifest() for job_id in self._order]

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting submissions and drain the workers (idempotent).

        Queued jobs that no worker has picked up yet are drained as
        cancelled; a running job finishes its simulation first (bounded by
        ``timeout`` per worker join — workers are daemons, so a stuck
        simulation never blocks interpreter exit).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------ internals

    def _release_fingerprint(self, job: Job) -> None:
        """Drop the in-flight dedup entry held by ``job`` (lock held)."""
        if self._in_flight.get(job.fingerprint) == job.job_id:
            del self._in_flight[job.fingerprint]

    def _notify(self, job: Job) -> None:
        """Invoke the finish callback outside the lock (errors swallowed —
        a metrics bug must not take a worker thread down)."""
        if self._on_finish is None:
            return
        try:
            self._on_finish(job)
        except Exception:  # pragma: no cover - defensive
            pass

    def _worker_loop(self) -> None:
        """One worker: pull job ids, execute, record outcome, repeat."""
        while True:
            job_id = self._tasks.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                if job.state != JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
            try:
                artifact = self._run(job.spec_id, config=job.config, **job.overrides)
            except Exception as error:  # driver/validation/backend failures
                with self._lock:
                    job.state = JobState.FAILED
                    job.error = f"{type(error).__name__}: {error}"
                    job.finished_at = time.time()
                    self._release_fingerprint(job)
            else:
                with self._lock:
                    job.state = JobState.DONE
                    job.artifact = artifact
                    job.cache = artifact.execution.get("cache")
                    job.finished_at = time.time()
                    self._release_fingerprint(job)
            self._notify(job)
