"""The durable job journal: crash-safe bookkeeping for the service's queue.

The :class:`~repro.service.jobs.JobQueue` is in-memory by design — the
*results* of completed jobs are durable in the content-addressed
:class:`~repro.store.RunStore` — but before this module a crash of the
serving process lost every queued and running job: clients held job ids
that would answer 404 forever, and the work simply vanished.  The
:class:`JobJournal` closes that gap with an append-only ``journal.jsonl``
kept at the store root beside ``index.jsonl``, reusing the store index's
write discipline wholesale (:func:`repro.store.index.append_jsonl` /
:func:`~repro.store.index.read_jsonl`): one compact JSON object per line,
single-``write`` appends serialised through an advisory file lock, and a
torn tail from a crashed writer skipped on read rather than raised.

One line is appended per life-cycle transition::

    {"event": "submit", "job_id": "000003-9f2c41a0b7d1", "spec_id": "E1",
     "fingerprint": "...", "params": {...}, "execution": {...}, "time": ...}
    {"event": "start",  "job_id": "000003-9f2c41a0b7d1", ...}
    {"event": "finish", "job_id": "000003-9f2c41a0b7d1", "cache": "miss", ...}

``submit`` carries the *raw request payload* (the client's parameter
overrides and whitelisted execution options, both plain JSON) — exactly
what is needed to resubmit the job through the normal front door after a
restart.  :meth:`JobJournal.replay` folds the lines into per-job state
(last event wins) and reports the jobs that were still ``submit``-ed or
``start``-ed when the process died; :meth:`repro.service.jobs.JobQueue.recover`
re-enqueues those under their **original job ids**, so a client polling
across the crash sees its job finish instead of a 404.

Replay is **idempotent by construction**: a replayed job re-runs through
:func:`repro.api.run_experiment`, which is fingerprint-memoized — if the
crashed process had already persisted the artifact (the crash landed
between the store put and the ``finish`` line), the replay resolves as a
store hit and no simulation is repeated.

Journal writes are deliberately non-fatal: on an environmental failure
(disk full, read-only store) the journal disarms itself, reports the
reason through its ``on_error`` callback (the service flips to *degraded*
mode), and the queue keeps serving — durability degrades before
availability does.  :meth:`JobJournal.checkpoint` compacts the file,
dropping terminal jobs whose results the store already owns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..store.index import append_jsonl, file_lock, read_jsonl
from ..testing import chaos

__all__ = ["JOURNAL_FILE", "JournalRecord", "JournalReplay", "JobJournal", "revive_literals"]

#: File name of the job journal, at the store root beside ``index.jsonl``.
JOURNAL_FILE = "journal.jsonl"

#: Events that carry the full resubmission payload.
_SUBMIT_EVENTS = ("submit",)

#: Events after which a job needs recovery if nothing terminal follows.
_PENDING_EVENTS = ("submit", "start")

#: Events a job can never leave (mirrors ``JobState.TERMINAL``).
_TERMINAL_EVENTS = ("finish", "fail", "cancel")


def revive_literals(value: Any) -> Any:
    """JSON arrays back to the tuples the experiment parameters expect.

    JSON has no tuple type, but the drivers' sweep parameters (``sizes``,
    ``epsilons``, ...) are declared as tuples; the fingerprint
    canonicaliser treats the two identically, and reviving keeps
    driver-side ``isinstance`` expectations intact.  Shared by the service
    handlers (reviving request bodies) and the journal replay (reviving
    journaled submissions).
    """
    if isinstance(value, list):
        return tuple(revive_literals(item) for item in value)
    if isinstance(value, dict):
        return {key: revive_literals(item) for key, item in value.items()}
    return value


@dataclass
class JournalRecord:
    """The folded journal state of one job (its last event wins).

    ``params``/``execution`` are the raw JSON payloads of the job's most
    recent ``submit`` event — everything :meth:`JobJournal.replay`'s caller
    needs to resubmit the job through the normal validation path.
    """

    job_id: str
    spec_id: str = ""
    fingerprint: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)
    last_event: str = ""
    error: Optional[str] = None

    @property
    def sequence(self) -> int:
        """The submission sequence parsed from the job id (0 if unparseable)."""
        head = self.job_id.split("-", 1)[0]
        return int(head) if head.isdigit() else 0


@dataclass
class JournalReplay:
    """What :meth:`JobJournal.replay` found in the journal.

    ``pending`` lists the jobs whose last event was non-terminal — the work
    a crash interrupted — in submission order; ``max_sequence`` lets the
    queue continue its job-id numbering past everything ever journaled
    (ids must never be reused: a client may still hold the old ones).
    """

    pending: List[JournalRecord] = field(default_factory=list)
    terminal: int = 0
    max_sequence: int = 0
    entries: int = 0


class JobJournal:
    """Append-only durability for job life-cycle transitions.

    Parameters
    ----------
    store_root:
        The service's store root; the journal lives there as
        ``journal.jsonl`` so one ``--store`` flag names *all* durable
        state (artifacts, index, journal) and a restart against the same
        store finds everything it needs.
    on_error:
        Optional callback invoked with a reason string the first time an
        append fails environmentally; the journal disarms itself after
        calling it (durability is lost, serving continues) and the service
        surfaces the reason via ``/healthz``.
    """

    def __init__(
        self,
        store_root: Union[str, Path],
        *,
        on_error: Optional[Callable[[str], None]] = None,
    ):
        """Point the journal at ``<store_root>/journal.jsonl`` (created lazily)."""
        self.path = Path(store_root) / JOURNAL_FILE
        self._on_error = on_error
        self.disabled_reason: Optional[str] = None

    def record(self, event: str, job_id: str, **fields: Any) -> bool:
        """Append one life-cycle transition; returns whether it was durable.

        ``fields`` is JSON-safe extra payload (``submit`` events carry
        ``spec_id``/``fingerprint``/``params``/``execution``; ``fail``
        carries ``error``; ``finish`` carries ``cache``).  An environmental
        write failure (or an armed ``journal.append`` chaos fault) disables
        the journal — the first failure reports through ``on_error``, and
        every later call returns ``False`` immediately.  The queue never
        blocks on journaling problems.
        """
        if self.disabled_reason is not None:
            return False
        entry = {"event": event, "job_id": job_id, "time": time.time(), **fields}
        try:
            chaos.fire("journal.append", event=event, job_id=job_id)
            append_jsonl(self.path, entry)
        except OSError as error:
            self.disabled_reason = f"journal append failed: {type(error).__name__}: {error}"
            if self._on_error is not None:
                self._on_error(self.disabled_reason)
            return False
        return True

    def replay(self) -> JournalReplay:
        """Fold the journal into per-job state and report recoverable work.

        Last event per job id wins.  Jobs whose last event is ``submit`` or
        ``start`` were interrupted by a crash and appear in ``pending`` (in
        submission order); jobs that reached ``finish``/``fail``/``cancel``
        are counted but need nothing.  Torn or foreign lines are skipped by
        the underlying :func:`~repro.store.index.read_jsonl`, so a journal
        damaged by the very crash being recovered from still replays.
        """
        records: Dict[str, JournalRecord] = {}
        order: List[str] = []
        replay = JournalReplay()
        for entry in read_jsonl(self.path):
            job_id = entry.get("job_id")
            event = entry.get("event")
            if not isinstance(job_id, str) or not isinstance(event, str):
                continue
            replay.entries += 1
            record = records.get(job_id)
            if record is None:
                record = records[job_id] = JournalRecord(job_id=job_id)
                order.append(job_id)
            record.last_event = event
            if event in _SUBMIT_EVENTS:
                record.spec_id = str(entry.get("spec_id", record.spec_id))
                record.fingerprint = str(entry.get("fingerprint", record.fingerprint))
                params = entry.get("params")
                execution = entry.get("execution")
                record.params = dict(params) if isinstance(params, dict) else {}
                record.execution = dict(execution) if isinstance(execution, dict) else {}
            elif event == "fail":
                record.error = entry.get("error")
        for job_id in order:
            record = records[job_id]
            replay.max_sequence = max(replay.max_sequence, record.sequence)
            if record.last_event in _TERMINAL_EVENTS:
                replay.terminal += 1
            elif record.last_event in _PENDING_EVENTS:
                replay.pending.append(record)
        replay.pending.sort(key=lambda record: record.sequence)
        return replay

    def checkpoint(self) -> int:
        """Compact the journal to just the still-pending submissions.

        Rewrites the file atomically (temp sibling + ``os.replace``, under
        the same advisory lock appends take) keeping one fresh ``submit``
        line per pending job and dropping everything terminal — those
        results are durable in the store, so carrying their history only
        grows the file.  Called on graceful shutdown (SIGTERM drain) and
        after recovery.  Returns the number of pending jobs kept.
        """
        import json
        import os
        import tempfile

        if self.disabled_reason is not None:
            return 0
        replay = self.replay()
        lines = []
        for record in replay.pending:
            lines.append(
                json.dumps(
                    {
                        "event": "submit",
                        "job_id": record.job_id,
                        "spec_id": record.spec_id,
                        "fingerprint": record.fingerprint,
                        "params": record.params,
                        "execution": record.execution,
                        "time": time.time(),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                    allow_nan=False,
                )
            )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with file_lock(self.path.with_name(self.path.name + ".lock")):
                handle, temp_name = tempfile.mkstemp(
                    prefix=f".{JOURNAL_FILE}.", suffix=".tmp", dir=str(self.path.parent)
                )
                try:
                    with os.fdopen(handle, "w", encoding="utf-8") as stream:
                        stream.write("".join(line + "\n" for line in lines))
                    os.replace(temp_name, self.path)
                except BaseException:
                    try:
                        os.unlink(temp_name)
                    except OSError:  # pragma: no cover - already promoted
                        pass
                    raise
        except OSError as error:
            self.disabled_reason = f"journal checkpoint failed: {type(error).__name__}: {error}"
            if self._on_error is not None:
                self._on_error(self.disabled_reason)
            return 0
        return len(replay.pending)
