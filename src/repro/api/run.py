"""The single programmatic entry point: :func:`run_experiment`.

``run_experiment("E8", config=ExecutionConfig(jobs=0, batch=True),
set_sizes=(50, 200))`` resolves the experiment spec from the registry,
resolves the execution settings into a plan exactly once, validates the
parameter overrides against the spec's declared parameters, invokes the
driver, and wraps the outcome in a
:class:`~repro.store.RunArtifact` carrying the fully resolved
inputs (parameters + execution plan), the report, the package version and
the wall time — everything :func:`repro.store.save_run` needs
to persist a reproducible record of the run.

When the plan names a store (``ExecutionConfig(store_path=...)``, the
CLI's ``--store``, or ``REPRO_STORE``), the run is memoized through the
content-addressed :class:`~repro.store.RunStore`: the run fingerprint —
sha256 over spec id, package version, resolved parameters and the
``batch`` flag, excluding ``jobs``/``backend`` because the determinism
contract proves them result-irrelevant — is looked up *before* any
execution backend is created.  A hit loads, verifies and returns the
stored artifact (``execution["cache"] == "hit"``); a miss computes
normally and persists the artifact under its fingerprint.  The miss path
is **double-checked** under the store's per-fingerprint compute lock
(:meth:`~repro.store.RunStore.compute_lock`): two threads submitting the
identical request simultaneously — the experiment service's duplicate-
submission case — run the simulation exactly once, with the loser of the
race served the winner's freshly persisted artifact as a hit.

:func:`resolve_run_inputs` is the first half of this function on its own:
spec + plan + fully resolved parameters + fingerprint, with *no*
execution.  The service layer (:mod:`repro.service`) calls it to answer
"is this request already stored?" and to address jobs before any worker
picks them up, guaranteed to agree with what ``run_experiment`` would
compute because ``run_experiment`` itself goes through it.

The CLI (``repro-flip experiment``), the benchmark scripts and the examples
all call this function; per-driver ``run(...)`` signatures remain available
but are a deprecation-shimmed compatibility path (see
:func:`repro.api.config.resolve_run_options`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from ..errors import ExperimentError
from ..store import RunArtifact, RunStore, StoreWriteError, run_fingerprint
from .config import ExecutionConfig, ExecutionPlan, resolve_run_options
from .spec import ExperimentSpec, get_spec

__all__ = ["ResolvedRun", "resolve_run_inputs", "run_experiment"]


@dataclass(frozen=True)
class ResolvedRun:
    """The fully resolved inputs of one prospective experiment run.

    Produced by :func:`resolve_run_inputs`; everything
    :func:`run_experiment` decides from before executing anything —
    notably the content ``fingerprint``, which is what the run store and
    the service's job queue key on.
    """

    spec: ExperimentSpec
    plan: ExecutionPlan
    parameters: Dict[str, Any]
    fingerprint: str


def resolve_run_inputs(
    spec_or_id: Union[str, ExperimentSpec],
    *,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
    **param_overrides: Any,
) -> ResolvedRun:
    """Resolve spec, plan, parameters and fingerprint — without running.

    Performs exactly the validation and resolution :func:`run_experiment`
    performs up front: the spec is fetched from the registry, the config is
    resolved into an :class:`~repro.api.config.ExecutionPlan` (validated
    against the spec's capability flags), the parameter overrides are
    checked against the declared parameters, ``trials``/``base_seed``
    double-specification is rejected, and the defaults are merged with the
    overrides into the fully resolved parameter mapping the fingerprint
    hashes.  Raises :class:`~repro.errors.ExperimentError` on any invalid
    input — which is why the service layer calls this *before* accepting a
    job, so a bad request fails at submission time with a ``400`` instead
    of inside a worker thread.
    """
    from .. import __version__

    spec = get_spec(spec_or_id)
    plan = resolve_run_options(spec.experiment_id, config=config or ExecutionConfig())
    spec.validate_overrides(param_overrides)
    for name in ("trials", "base_seed"):
        if name in param_overrides and getattr(plan, name) is not None:
            raise ExperimentError(
                f"{name} was set both as a parameter override and on the ExecutionConfig; "
                "pass it once"
            )

    parameters = spec.defaults()
    parameters.update(param_overrides)
    if plan.trials is not None:
        parameters["trials"] = plan.trials
    if plan.base_seed is not None:
        parameters["base_seed"] = plan.base_seed

    # The fingerprint covers the fully *resolved* parameters, so a default
    # left implicit and the same value passed explicitly hash identically.
    fingerprint = run_fingerprint(spec.experiment_id, __version__, parameters, batch=plan.batch)
    return ResolvedRun(spec=spec, plan=plan, parameters=parameters, fingerprint=fingerprint)


def _execute(resolved: ResolvedRun, execution: Dict[str, Any], **param_overrides: Any) -> RunArtifact:
    """Drive the experiment described by ``resolved`` and package the artifact."""
    from .. import __version__

    plan = resolved.plan
    backend = plan.create_backend()
    started = time.perf_counter()
    if backend is None:
        report = resolved.spec.driver().run(config=plan, **param_overrides)
    else:
        # One backend per run: started once, installed for every dispatch
        # the driver performs (trial fan-outs, point-parallel sweeps,
        # batched task lists), closed when the driver returns.  This is
        # where the persistent backends earn their keep — the local pool is
        # spawned once here instead of per sweep-point family, and remote
        # workers serve the whole run.
        from ..exec.backends import use_backend

        with backend, use_backend(backend):
            report = resolved.spec.driver().run(config=plan, **param_overrides)
            # Record the *live* summary (resolved endpoint, spawned workers,
            # chunks dispatched) before close() tears the backend down.
            execution["backend"] = backend.describe()
    wall_time = time.perf_counter() - started

    return RunArtifact(
        spec_id=resolved.spec.experiment_id,
        parameters=resolved.parameters,
        execution=execution,
        report=report,
        version=__version__,
        wall_time_seconds=wall_time,
        fingerprint=resolved.fingerprint,
    )


def run_experiment(
    spec_or_id: Union[str, ExperimentSpec],
    *,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
    **param_overrides: Any,
) -> RunArtifact:
    """Run one experiment through the unified API and return its artifact.

    Parameters
    ----------
    spec_or_id:
        An experiment id (``"E1"``..``"E12"``) or an
        :class:`~repro.api.spec.ExperimentSpec` from the registry.
    config:
        Execution settings; ``None`` means the serial defaults.  An
        :class:`~repro.api.config.ExecutionConfig` is resolved into a
        runner + batching plan exactly once, here, and the resolved plan is
        handed to the driver; an already-resolved
        :class:`~repro.api.config.ExecutionPlan` for the same experiment is
        accepted as-is.
    param_overrides:
        Overrides for the spec's declared parameters (e.g. ``epsilon=0.3``,
        ``sizes=(250, 500)``).  Unknown names raise
        :class:`~repro.errors.ExperimentError` listing the valid ones.

    Returns
    -------
    RunArtifact
        The report plus the fully resolved parameters, execution summary,
        package version, wall time and fingerprint (persist with
        :func:`repro.store.save_run`).  With a store on the plan,
        ``execution["cache"]`` records the memoization outcome (``"hit"``,
        ``"miss"``, or ``"bypass"`` when ``cache=False``); without one the
        key is absent, matching the historical manifests.
    """
    resolved = resolve_run_inputs(spec_or_id, config=config, **param_overrides)
    plan = resolved.plan

    # The store lookup happens before any backend exists: a cache hit must
    # not spawn worker pools, open endpoints, or touch the exec layer at
    # all.
    store: Optional[RunStore] = None
    if plan.store_path is not None:
        store = RunStore(plan.store_path)
        if plan.cache:
            cached = store.get(resolved.fingerprint)
            if cached is not None:
                cached.execution["cache"] = "hit"
                return cached

    execution = plan.describe()
    if store is None:
        return _execute(resolved, execution, **param_overrides)

    if not plan.cache:
        # Bypass/refresh mode: recompute unconditionally, overwrite the
        # stored artifact.  No compute lock — refreshes are explicit and
        # save_run's atomic promotion keeps concurrent writers safe.
        execution["cache"] = "bypass"
        artifact = _execute(resolved, execution, **param_overrides)
        _put_or_degrade(store, artifact)
        return artifact

    # Double-checked miss: serialise identical submissions on the store's
    # per-fingerprint compute lock so the simulation runs exactly once.
    # Distinct fingerprints take distinct locks and never contend.
    with store.compute_lock(resolved.fingerprint):
        cached = store.get(resolved.fingerprint)
        if cached is not None:
            cached.execution["cache"] = "hit"
            return cached
        execution["cache"] = "miss"
        artifact = _execute(resolved, execution, **param_overrides)
        _put_or_degrade(store, artifact)
    return artifact


def _put_or_degrade(store: RunStore, artifact: RunArtifact) -> None:
    """Persist ``artifact``, degrading to compute-only on a failed write.

    A :class:`~repro.store.StoreWriteError` — disk full, read-only
    filesystem — must not destroy a simulation that already succeeded: the
    computed artifact is returned to the caller with the failure recorded
    as ``execution["store_error"]`` (and a :class:`RuntimeWarning`), so a
    library caller still gets its result, the CLI still prints its report,
    and the experiment service flips into degraded mode off the recorded
    reason instead of failing the job.  Every other exception (corrupt
    data, programming errors) propagates unchanged.
    """
    import warnings

    try:
        store.put(artifact)
    except StoreWriteError as error:
        artifact.execution["store_error"] = str(error)
        warnings.warn(
            f"run {artifact.fingerprint} computed but not persisted: {error}",
            RuntimeWarning,
            stacklevel=3,
        )
