"""The single programmatic entry point: :func:`run_experiment`.

``run_experiment("E8", config=ExecutionConfig(jobs=0, batch=True),
set_sizes=(50, 200))`` resolves the experiment spec from the registry,
resolves the execution settings into a plan exactly once, validates the
parameter overrides against the spec's declared parameters, invokes the
driver, and wraps the outcome in a
:class:`~repro.store.RunArtifact` carrying the fully resolved
inputs (parameters + execution plan), the report, the package version and
the wall time — everything :func:`repro.store.save_run` needs
to persist a reproducible record of the run.

When the plan names a store (``ExecutionConfig(store_path=...)``, the
CLI's ``--store``, or ``REPRO_STORE``), the run is memoized through the
content-addressed :class:`~repro.store.RunStore`: the run fingerprint —
sha256 over spec id, package version, resolved parameters and the
``batch`` flag, excluding ``jobs``/``backend`` because the determinism
contract proves them result-irrelevant — is looked up *before* any
execution backend is created.  A hit loads, verifies and returns the
stored artifact (``execution["cache"] == "hit"``); a miss computes
normally and persists the artifact under its fingerprint.

The CLI (``repro-flip experiment``), the benchmark scripts and the examples
all call this function; per-driver ``run(...)`` signatures remain available
but are a deprecation-shimmed compatibility path (see
:func:`repro.api.config.resolve_run_options`).
"""

from __future__ import annotations

import time
from typing import Any, Optional, Union

from ..errors import ExperimentError
from ..store import RunArtifact, RunStore, run_fingerprint
from .config import ExecutionConfig, ExecutionPlan, resolve_run_options
from .spec import ExperimentSpec, get_spec

__all__ = ["run_experiment"]


def run_experiment(
    spec_or_id: Union[str, ExperimentSpec],
    *,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
    **param_overrides: Any,
) -> RunArtifact:
    """Run one experiment through the unified API and return its artifact.

    Parameters
    ----------
    spec_or_id:
        An experiment id (``"E1"``..``"E12"``) or an
        :class:`~repro.api.spec.ExperimentSpec` from the registry.
    config:
        Execution settings; ``None`` means the serial defaults.  An
        :class:`~repro.api.config.ExecutionConfig` is resolved into a
        runner + batching plan exactly once, here, and the resolved plan is
        handed to the driver; an already-resolved
        :class:`~repro.api.config.ExecutionPlan` for the same experiment is
        accepted as-is.
    param_overrides:
        Overrides for the spec's declared parameters (e.g. ``epsilon=0.3``,
        ``sizes=(250, 500)``).  Unknown names raise
        :class:`~repro.errors.ExperimentError` listing the valid ones.

    Returns
    -------
    RunArtifact
        The report plus the fully resolved parameters, execution summary,
        package version, wall time and fingerprint (persist with
        :func:`repro.store.save_run`).  With a store on the plan,
        ``execution["cache"]`` records the memoization outcome (``"hit"``,
        ``"miss"``, or ``"bypass"`` when ``cache=False``); without one the
        key is absent, matching the historical manifests.
    """
    # Imported lazily: repro/__init__ does not pull in the api package, so
    # the version attribute is always available by the time a run starts.
    from .. import __version__

    spec = get_spec(spec_or_id)
    plan = resolve_run_options(spec.experiment_id, config=config or ExecutionConfig())
    spec.validate_overrides(param_overrides)
    for name in ("trials", "base_seed"):
        if name in param_overrides and getattr(plan, name) is not None:
            raise ExperimentError(
                f"{name} was set both as a parameter override and on the ExecutionConfig; "
                "pass it once"
            )

    parameters = spec.defaults()
    parameters.update(param_overrides)
    if plan.trials is not None:
        parameters["trials"] = plan.trials
    if plan.base_seed is not None:
        parameters["base_seed"] = plan.base_seed

    # The store lookup happens before any backend exists: a cache hit must
    # not spawn worker pools, open endpoints, or touch the exec layer at
    # all.  The fingerprint covers the fully *resolved* parameters, so a
    # default left implicit and the same value passed explicitly hash
    # identically.
    fingerprint = run_fingerprint(
        spec.experiment_id, __version__, parameters, batch=plan.batch
    )
    store: Optional[RunStore] = None
    if plan.store_path is not None:
        store = RunStore(plan.store_path)
        if plan.cache:
            cached = store.get(fingerprint)
            if cached is not None:
                cached.execution["cache"] = "hit"
                return cached

    backend = plan.create_backend()
    execution = plan.describe()
    if store is not None:
        execution["cache"] = "miss" if plan.cache else "bypass"
    started = time.perf_counter()
    if backend is None:
        report = spec.driver().run(config=plan, **param_overrides)
    else:
        # One backend per run: started once, installed for every dispatch
        # the driver performs (trial fan-outs, point-parallel sweeps,
        # batched task lists), closed when the driver returns.  This is
        # where the persistent backends earn their keep — the local pool is
        # spawned once here instead of per sweep-point family, and remote
        # workers serve the whole run.
        from ..exec.backends import use_backend

        with backend, use_backend(backend):
            report = spec.driver().run(config=plan, **param_overrides)
            # Record the *live* summary (resolved endpoint, spawned workers,
            # chunks dispatched) before close() tears the backend down.
            execution["backend"] = backend.describe()
    wall_time = time.perf_counter() - started

    artifact = RunArtifact(
        spec_id=spec.experiment_id,
        parameters=parameters,
        execution=execution,
        report=report,
        version=__version__,
        wall_time_seconds=wall_time,
        fingerprint=fingerprint,
    )
    if store is not None:
        store.put(artifact)
    return artifact
