"""The experiment registry: one declarative :class:`ExperimentSpec` per driver.

Every reproduced claim (the E1–E12 table in ``README.md``) is described here
*declaratively*: its id, title, the paper statement it reproduces, the
capability flags of its driver (``supports_runner`` / ``supports_batch`` /
``supports_point_jobs``) and its tunable parameters with their defaults.

The registry is the single source of truth that used to be scattered across
the bare ``DRIVERS`` dict, per-driver ``inspect.signature`` probing in the
CLI, and copy-pasted help text.  Capability questions ("which experiments
take ``--batch``?") and parameter questions ("what can ``--set`` override on
E8?") are answered from the spec, never by introspecting a ``run``
signature; ``tests/unit/api/test_spec_registry.py`` pins every flag and default
against the actual driver signatures so the two can never drift.

Driver modules are resolved lazily (:meth:`ExperimentSpec.driver` imports on
first use), so importing :mod:`repro.api` stays cheap and free of circular
imports — the driver modules themselves import :mod:`repro.api.config` for
their ``config=`` argument.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Dict, Iterator, List, Tuple

from ..errors import ExperimentError

__all__ = [
    "ParameterSpec",
    "ExperimentSpec",
    "REGISTRY",
    "get_spec",
    "iter_specs",
    "experiment_ids",
    "batchable_experiment_ids",
]


@dataclass(frozen=True)
class ParameterSpec:
    """One tunable parameter of an experiment driver: name, default, blurb."""

    name: str
    default: Any
    description: str = ""


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Identifier from the README.md experiment index (e.g. ``"E1"``).
    title:
        Human-readable one-line description (also used by the driver's
        report, so the registry and the rendered tables cannot drift).
    claim:
        The paper statement being reproduced (theorem / claim / section).
    module:
        Dotted path of the driver module, imported lazily by :meth:`driver`.
    supports_runner:
        Whether ``run`` accepts a per-trial :class:`~repro.exec.runner.TrialRunner`
        (the CLI's plain ``--jobs``).
    supports_batch:
        Whether ``run`` has a vectorised batch path (the CLI's ``--batch``).
    supports_point_jobs:
        Whether ``run`` can spread independent sweep points over a shared
        process pool (the CLI's ``--jobs`` combined with ``--batch``).
    parameters:
        The driver's tunable parameters, in signature order, with defaults.
    """

    experiment_id: str
    title: str
    claim: str
    module: str
    supports_runner: bool = True
    supports_batch: bool = False
    supports_point_jobs: bool = False
    parameters: Tuple[ParameterSpec, ...] = field(default_factory=tuple)

    def driver(self) -> ModuleType:
        """Import (on first use) and return the driver module."""
        return importlib.import_module(self.module)

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        """The declared parameter names, in signature order."""
        return tuple(parameter.name for parameter in self.parameters)

    def defaults(self) -> Dict[str, Any]:
        """The declared parameter defaults as a fresh dict."""
        return {parameter.name: parameter.default for parameter in self.parameters}

    def validate_overrides(self, overrides: Dict[str, Any]) -> None:
        """Reject parameter overrides the driver does not declare."""
        unknown = sorted(set(overrides) - set(self.parameter_names))
        if unknown:
            raise ExperimentError(
                f"{self.experiment_id} has no parameter(s) {', '.join(unknown)}; "
                f"settable parameters are: {', '.join(self.parameter_names)}"
            )


def _spec(experiment_id: str, title: str, claim: str, stem: str, **kwargs: Any) -> ExperimentSpec:
    """Registry construction shorthand (module path from the driver stem)."""
    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        claim=claim,
        module=f"repro.experiments.{stem}",
        **kwargs,
    )


def _parameters(*pairs: Tuple[str, Any, str]) -> Tuple[ParameterSpec, ...]:
    """Build a parameter tuple from ``(name, default, description)`` triples."""
    return tuple(ParameterSpec(name, default, description) for name, default, description in pairs)


#: The experiment registry, keyed by experiment id (E1..E12, in order).
#: ``tests/unit/api/test_spec_registry.py`` pins every entry against the driver
#: signatures — edit both together.
REGISTRY: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "E1",
            "Broadcast round complexity versus n at fixed epsilon",
            "Theorem 2.17: O(log n / eps^2) rounds, all agents correct w.h.p.",
            "e1_rounds_vs_n",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("sizes", (250, 500, 1000, 2000, 4000), "population sizes swept"),
                ("epsilon", 0.2, "noise margin (flip prob = 1/2 - epsilon)"),
                ("trials", 5, "Monte-Carlo trials per sweep point"),
                ("base_seed", 101, "root random seed"),
            ),
        ),
        _spec(
            "E2",
            "Broadcast round complexity versus epsilon at fixed n",
            "Theorem 2.17: O(log n / eps^2) rounds, all agents correct w.h.p.",
            "e2_rounds_vs_eps",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("epsilons", (0.1, 0.15, 0.2, 0.3, 0.4), "noise margins swept"),
                ("n", 1000, "population size"),
                ("trials", 5, "Monte-Carlo trials per sweep point"),
                ("base_seed", 202, "root random seed"),
            ),
        ),
        _spec(
            "E3",
            "Total message (bit) complexity of the broadcast protocol",
            "Theorem 2.17: O(n log n / eps^2) messages in total",
            "e3_messages",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("sizes", (500, 1000, 2000), "population sizes of the grid"),
                ("epsilons", (0.15, 0.25), "noise margins of the grid"),
                ("trials", 3, "Monte-Carlo trials per grid point"),
                ("base_seed", 303, "root random seed"),
            ),
        ),
        _spec(
            "E4",
            "Phase 0: agents activated directly by the source and their bias",
            "Claim 2.2: beta_s/3 <= X0 <= beta_s and eps_0 >= eps/2, w.h.p.",
            "e4_phase0",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 4000, "population size"),
                ("epsilons", (0.1, 0.2, 0.3), "noise margins measured"),
                ("trials", 30, "Monte-Carlo trials per epsilon"),
                ("base_seed", 404, "root random seed"),
            ),
        ),
        _spec(
            "E5",
            "Stage I: per-phase layer sizes and bias deterioration",
            "Claims 2.4/2.8, Corollaries 2.5-2.7: X_i grows geometrically "
            "(within [1/16, 1] of (beta+1)^i X_0), eps_i >= eps^(i+1)/2, all agents activated",
            "e5_stage1_growth",
            supports_batch=True,
            parameters=_parameters(
                ("n", 8000, "population size"),
                ("epsilon", 0.35, "noise margin"),
                ("beta_override", 8, "shortened per-phase length (more visible phases)"),
                ("trials", 5, "Monte-Carlo trials"),
                ("base_seed", 505, "root random seed"),
            ),
        ),
        _spec(
            "E6",
            "Stage II: per-phase bias amplification from delta_1 = Theta(sqrt(log n / n))",
            "Lemma 2.14 / Corollary 2.15: each phase multiplies a small bias by >= 1.7 "
            "(up to a constant), after which the final phase makes all agents correct w.h.p.",
            "e6_stage2_boost",
            supports_batch=True,
            parameters=_parameters(
                ("n", 4000, "population size"),
                ("epsilon", 0.2, "noise margin"),
                ("initial_bias", None, "seeded Stage-II starting bias (None = 2x the Lemma 2.3 target)"),
                ("trials", 10, "Monte-Carlo trials"),
                ("base_seed", 606, "root random seed"),
            ),
        ),
        _spec(
            "E7",
            "Noisy broadcast: the paper's protocol versus naive strategies",
            "Section 1.6: immediate forwarding leaves the population near a coin flip "
            "(1/2 + (2 eps)^Theta(log n)); adopt-the-last-bit voter dynamics do not converge; "
            "the paper's protocol reaches full correct consensus",
            "e7_baselines",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 2000, "population size"),
                ("epsilons", (0.1, 0.2), "noise margins compared"),
                ("trials", 4, "Monte-Carlo trials per (epsilon, protocol) cell"),
                ("voter_rounds", 600, "round budget of the noisy-voter baseline"),
                ("base_seed", 707, "root random seed"),
            ),
        ),
        _spec(
            "E8",
            "Majority-consensus success rate versus |A| and initial majority-bias",
            "Corollary 2.18: success w.h.p. when |A| = Omega(log n / eps^2) and "
            "bias = Omega(sqrt(log n / |A|)); below the bias threshold the majority is not recoverable",
            "e8_majority",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 2000, "population size"),
                ("epsilon", 0.2, "noise margin"),
                ("set_sizes", (50, 200, 800), "initial opinionated set sizes |A| swept"),
                ("biases", (0.02, 0.05, 0.1, 0.2, 0.35), "initial majority-biases swept"),
                ("trials", 5, "Monte-Carlo trials per grid point"),
                ("base_seed", 808, "root random seed"),
            ),
        ),
        _spec(
            "E9",
            "Cost of removing the global clock (bounded skew and activation phase)",
            "Theorem 3.1: additive O(log^2 n) rounds, unchanged message complexity",
            "e9_async",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 1000, "population size"),
                ("epsilon", 0.25, "noise margin"),
                ("skews", (8, 32, 128), "bounded clock skews D measured"),
                ("trials", 3, "Monte-Carlo trials per variant"),
                ("base_seed", 909, "root random seed"),
            ),
        ),
        _spec(
            "E10",
            "Majority of gamma noisy samples from a delta-biased population",
            "Lemma 2.11: P(majority correct) >= min(1/2 + 4 delta, 1/2 + 1/100)",
            "e10_majority_lemma",
            supports_runner=False,
            supports_batch=True,
            parameters=_parameters(
                ("epsilon", 0.2, "noise margin"),
                ("deltas", (0.002, 0.005, 0.02, 0.05, 0.1, 0.25), "population biases measured"),
                ("r0", 8.0, "calibrated sample-count constant (gamma = 2*ceil(r0/eps^2)+1)"),
                ("monte_carlo_reps", 40_000, "Monte-Carlo repetitions per delta"),
                ("base_seed", 1010, "root random seed"),
            ),
        ),
        _spec(
            "E11",
            "Lower-bound reference points: direct-from-source versus listen-only",
            "Section 1.4: every agent needs Omega(log n / eps^2) source samples, so even the idealised "
            "direct scheme needs that many rounds, and listen-only broadcast needs Theta(n log n / eps^2) rounds",
            "e11_lower_bounds",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 400, "population size"),
                ("epsilon", 0.25, "noise margin"),
                ("trials", 3, "Monte-Carlo trials per scheme"),
                ("base_seed", 1111, "root random seed"),
            ),
        ),
        _spec(
            "E12",
            "Fault injection: the paper's protocol versus a phased fault-tolerant comparator",
            "Beyond the paper's model: sweep success rate against the fraction f of crash-stop "
            "or Byzantine agents, contrasting the protocol (no fault budget) with a classic "
            "approximate-consensus algorithm designed to tolerate exactly f faulty servers",
            "e12_faults",
            supports_batch=True,
            supports_point_jobs=True,
            parameters=_parameters(
                ("n", 600, "population size"),
                ("epsilon", 0.25, "noise margin"),
                ("fault_fractions", (0.0, 0.05, 0.1, 0.2, 0.3), "fault-prone fractions f swept"),
                ("fault_kind", "crash", "fault model: crash or byzantine"),
                ("crash_probability", 0.05, "per-round crash probability of prone agents"),
                ("consensus_eps", 0.05, "comparator agreement threshold (values start in [0, 1])"),
                ("trials", 4, "Monte-Carlo trials per (fraction, protocol) cell"),
                ("base_seed", 1212, "root random seed"),
            ),
        ),
    )
}


def get_spec(spec_or_id: Any) -> ExperimentSpec:
    """Resolve an experiment id (or pass an :class:`ExperimentSpec` through).

    Raises :class:`~repro.errors.ExperimentError` for unknown ids, listing
    the registered ones — the single error message the CLI and the
    programmatic API both surface.
    """
    if isinstance(spec_or_id, ExperimentSpec):
        return spec_or_id
    spec = REGISTRY.get(str(spec_or_id))
    if spec is None:
        raise ExperimentError(
            f"unknown experiment {spec_or_id!r}; registered experiments: "
            f"{', '.join(experiment_ids())}"
        )
    return spec


def iter_specs() -> Iterator[ExperimentSpec]:
    """All registered specs, in E1..E12 order."""
    for experiment_id in experiment_ids():
        yield REGISTRY[experiment_id]


def experiment_ids() -> List[str]:
    """All registered experiment ids, sorted numerically (E1..E12)."""
    return sorted(REGISTRY, key=lambda key: int(key[1:]))


def batchable_experiment_ids() -> str:
    """Comma-separated ids of the experiments with a vectorised batch path.

    Derived from the :attr:`ExperimentSpec.supports_batch` flags — the same
    flags :class:`repro.api.config.ExecutionConfig` validates against — so
    ``--batch`` help and error text can never drift from what actually runs.
    """
    return ", ".join(
        experiment_id
        for experiment_id in experiment_ids()
        if REGISTRY[experiment_id].supports_batch
    )
