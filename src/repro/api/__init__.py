"""repro.api — the unified experiment front door.

This package is the declarative entry point to the reproduction's
experiments (the E1–E11 table in ``README.md``):

* :mod:`repro.api.spec` — the :class:`ExperimentSpec` registry: id, title,
  paper claim, capability flags (``supports_batch`` /
  ``supports_point_jobs`` / ``supports_runner``) and declared parameters
  with defaults, replacing signature introspection everywhere;
* :mod:`repro.api.config` — the frozen :class:`ExecutionConfig` (jobs,
  batch, seed/trial overrides) that resolves itself into a runner +
  batching :class:`ExecutionPlan` exactly once, validated against the spec
  flags;
* :mod:`repro.api.run` — :func:`run_experiment`, the single programmatic
  entry point, returning a :class:`~repro.store.RunArtifact`
  that :func:`~repro.store.save_run` /
  :func:`~repro.store.load_run` persist as a per-run directory
  (manifest + report + raw payloads).  With a store on the config
  (``store_path=`` / ``REPRO_STORE`` / the CLI's ``--store``), runs are
  memoized through the content-addressed :class:`~repro.store.RunStore`
  keyed by :func:`~repro.store.run_fingerprint`.

Typical use::

    from repro.api import ExecutionConfig, run_experiment, save_run

    artifact = run_experiment("E8", config=ExecutionConfig(jobs=0, batch=True))
    print(artifact.report.render())
    save_run(artifact, "runs/e8-batched")

    # Or memoized: the second call is a cache hit served from the store.
    artifact = run_experiment("E8", config=ExecutionConfig(store_path="runs/store"))

The canonical sweep point-naming helper
(:func:`~repro.analysis.sweeps.sweep_point_names`) is re-exported here: it
is the one rule that disambiguates duplicate grid points, shared by every
sweep execution path and by the artifact manifests.
"""

from __future__ import annotations

from ..analysis.sweeps import sweep_point_names
from ..store import RunArtifact, RunStore, load_run, run_fingerprint, save_run
from .config import SERVICE_EXECUTION_KEYS, ExecutionConfig, ExecutionPlan, resolve_run_options
from .run import ResolvedRun, resolve_run_inputs, run_experiment
from .spec import (
    REGISTRY,
    ExperimentSpec,
    ParameterSpec,
    batchable_experiment_ids,
    experiment_ids,
    get_spec,
    iter_specs,
)

__all__ = [
    "ExperimentSpec",
    "ParameterSpec",
    "REGISTRY",
    "get_spec",
    "iter_specs",
    "experiment_ids",
    "batchable_experiment_ids",
    "ExecutionConfig",
    "ExecutionPlan",
    "SERVICE_EXECUTION_KEYS",
    "resolve_run_options",
    "ResolvedRun",
    "resolve_run_inputs",
    "run_experiment",
    "RunArtifact",
    "RunStore",
    "run_fingerprint",
    "save_run",
    "load_run",
    "sweep_point_names",
]
