"""repro.api — the unified experiment front door.

This package is the declarative entry point to the reproduction's
experiments (the E1–E11 table in ``README.md``):

* :mod:`repro.api.spec` — the :class:`ExperimentSpec` registry: id, title,
  paper claim, capability flags (``supports_batch`` /
  ``supports_point_jobs`` / ``supports_runner``) and declared parameters
  with defaults, replacing signature introspection everywhere;
* :mod:`repro.api.config` — the frozen :class:`ExecutionConfig` (jobs,
  batch, seed/trial overrides) that resolves itself into a runner +
  batching :class:`ExecutionPlan` exactly once, validated against the spec
  flags;
* :mod:`repro.api.run` — :func:`run_experiment`, the single programmatic
  entry point, returning a :class:`~repro.analysis.resultsio.RunArtifact`
  that :func:`~repro.analysis.resultsio.save_run` /
  :func:`~repro.analysis.resultsio.load_run` persist as a per-run directory
  (manifest + report + raw payloads).

Typical use::

    from repro.api import ExecutionConfig, run_experiment, save_run

    artifact = run_experiment("E8", config=ExecutionConfig(jobs=0, batch=True))
    print(artifact.report.render())
    save_run(artifact, "runs/e8-batched")

The canonical sweep point-naming helper
(:func:`~repro.analysis.sweeps.sweep_point_names`) is re-exported here: it
is the one rule that disambiguates duplicate grid points, shared by every
sweep execution path and by the artifact manifests.
"""

from __future__ import annotations

from ..analysis.resultsio import RunArtifact, load_run, save_run
from ..analysis.sweeps import sweep_point_names
from .config import ExecutionConfig, ExecutionPlan, resolve_run_options
from .run import run_experiment
from .spec import (
    REGISTRY,
    ExperimentSpec,
    ParameterSpec,
    batchable_experiment_ids,
    experiment_ids,
    get_spec,
    iter_specs,
)

__all__ = [
    "ExperimentSpec",
    "ParameterSpec",
    "REGISTRY",
    "get_spec",
    "iter_specs",
    "experiment_ids",
    "batchable_experiment_ids",
    "ExecutionConfig",
    "ExecutionPlan",
    "resolve_run_options",
    "run_experiment",
    "RunArtifact",
    "save_run",
    "load_run",
    "sweep_point_names",
]
