"""Execution settings: a frozen :class:`ExecutionConfig` resolved exactly once.

An :class:`ExecutionConfig` captures *how* an experiment should execute —
worker count, batch mode, seed and trial-count overrides — independently of
*which* experiment runs.  Calling :meth:`ExecutionConfig.resolve` against an
:class:`~repro.api.spec.ExperimentSpec` turns it into an
:class:`ExecutionPlan`: the runner instance, batch flag and point-parallel
worker count the driver will actually use, validated against the spec's
capability flags.  This is the one place execution concerns are mapped onto
driver keyword arguments; the CLI, :func:`repro.api.run_experiment` and the
benchmark helpers all resolve through it, so a capability error (``--batch``
on a driver without a batch path) carries the same message everywhere and
can never drift from the registry.

:func:`resolve_run_options` is the shim the experiment drivers call at the
top of ``run``: it accepts either the new ``config=`` object (an
:class:`ExecutionConfig`, or an already-resolved :class:`ExecutionPlan` so
the resolution genuinely happens once per run) or the legacy ``runner=`` /
``batch=`` / ``point_jobs=`` keyword arguments, which keep working
bit-identically but emit a single :class:`DeprecationWarning`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ExperimentError
from .spec import ExperimentSpec, batchable_experiment_ids, get_spec

if TYPE_CHECKING:  # pragma: no cover - avoids importing the exec layer eagerly
    from ..exec.runner import TrialRunner

__all__ = [
    "SERVICE_EXECUTION_KEYS",
    "ExecutionConfig",
    "ExecutionPlan",
    "resolve_run_options",
]

#: Execution options a service request's JSON body may set — the
#: experiment-shaping subset of :class:`ExecutionConfig`.  ``store_path``
#: and ``cache`` are deliberately absent: the service owns its store, and
#: requests must not redirect persistence or disable memoization.
SERVICE_EXECUTION_KEYS = ("jobs", "batch", "trials", "base_seed", "backend", "backend_options")


@dataclass(frozen=True)
class ExecutionConfig:
    """Frozen, experiment-agnostic execution settings.

    Attributes
    ----------
    jobs:
        Worker-process count with the CLI's ``--jobs`` convention: ``None``
        (default) = serial, ``0`` = one worker per CPU, ``k`` = ``k``
        workers.  On the batch path this becomes point parallelism.
    batch:
        Use the vectorised batch simulators instead of one engine per trial.
    base_seed:
        Override the driver's default root seed (``None`` = keep default).
    trials:
        Override the driver's default trial count (``None`` = keep default).
    backend:
        Execution backend for the run (``"in-process"``, ``"local"``,
        ``"remote"``; see :mod:`repro.exec.backends`).  ``None`` (default)
        keeps the historical behaviour: in-process execution with a
        throwaway local pool per parallel dispatch.  Naming a backend makes
        :func:`repro.api.run_experiment` build it once, install it for the
        whole run, and record it in the run manifest; results are
        bit-identical on every backend.
    backend_options:
        Backend-specific options (e.g. ``{"workers": 4}``, or for an
        externally reachable worker fleet ``{"endpoint": "0.0.0.0:7777",
        "authkey": "..."}`` — a non-loopback endpoint requires an explicit
        authkey, since the queue transport would otherwise accept pickles
        from anyone who can reach the port); validated against the
        backend's recognised option names at resolution time.
    store_path:
        Root directory of a content-addressed run store
        (:class:`repro.store.RunStore`).  When set,
        :func:`repro.api.run_experiment` consults the store *before*
        creating any execution backend — an identical semantic request
        (same spec, version, resolved parameters and batch flag; ``jobs``
        and ``backend`` deliberately excluded) is served from the store as
        a cache hit, and a miss is computed and persisted under its
        fingerprint.  ``None`` (default) keeps the uncached behaviour.
    cache:
        Whether the store lookup is consulted (``True``, default).
        ``cache=False`` with a ``store_path`` is the refresh mode (the
        CLI's ``--no-cache``): skip the lookup, recompute, and overwrite
        the stored artifact.  Without a ``store_path`` the flag is inert.
    """

    jobs: Optional[int] = None
    batch: bool = False
    base_seed: Optional[int] = None
    trials: Optional[int] = None
    backend: Optional[str] = None
    backend_options: Optional[Mapping[str, Any]] = None
    store_path: Optional[Union[str, Path]] = None
    cache: bool = True

    @classmethod
    def from_env(cls, variable: str = "REPRO_JOBS", *, batch: bool = False) -> "ExecutionConfig":
        """Build a config from the execution environment variables.

        The single place ``REPRO_BENCH_JOBS``-style knobs are interpreted:
        ``variable`` holds ``--jobs`` (unset/empty → serial, ``0`` → one
        worker per CPU, ``k`` → ``k`` workers — exactly the CLI
        convention).  Two companions select the execution backend:

        * ``REPRO_BACKEND`` — ``in-process``, ``local`` or ``remote``
          (unset/empty → the historical per-call dispatch);
        * ``REPRO_WORKERS`` — worker count handed to that backend (pool
          size for ``local``, auto-spawned localhost workers for
          ``remote``), overriding the jobs variable for the backend.

        Two more select the run store:

        * ``REPRO_STORE`` — root directory of a content-addressed run
          store (unset/empty → no store, the historical behaviour);
        * ``REPRO_CACHE`` — set to ``0``/``false``/``no``/``off`` to skip
          the store lookup (the ``--no-cache`` refresh mode); anything
          else, or unset, keeps caching on.
        """
        raw = os.environ.get(variable, "").strip()
        backend = os.environ.get("REPRO_BACKEND", "").strip() or None
        workers_raw = os.environ.get("REPRO_WORKERS", "").strip()
        backend_options = {"workers": int(workers_raw)} if workers_raw and backend else None
        store_raw = os.environ.get("REPRO_STORE", "").strip()
        cache_raw = os.environ.get("REPRO_CACHE", "").strip().lower()
        return cls(
            jobs=int(raw) if raw else None,
            batch=batch,
            backend=backend,
            backend_options=backend_options,
            store_path=store_raw or None,
            cache=cache_raw not in ("0", "false", "no", "off"),
        )

    @classmethod
    def for_service(
        cls,
        store_path: Union[str, Path],
        options: Optional[Mapping[str, Any]] = None,
    ) -> "ExecutionConfig":
        """Build a per-request config for the experiment service.

        The service's defaults differ from the library's in exactly two
        ways, both fixed here: every request is **memoized** through the
        service's store (``store_path`` is mandatory, ``cache`` always on —
        the whole point of serving is that repeated parameter points are
        hits), and the execution options come from an untrusted JSON body,
        so only the whitelisted keys in :data:`SERVICE_EXECUTION_KEYS` are
        accepted (``jobs``, ``batch``, ``trials``, ``base_seed``,
        ``backend``, ``backend_options``).  Anything else — notably
        ``store_path``/``cache`` themselves, which a request must not
        redirect — raises a labelled :class:`~repro.errors.ExperimentError`
        that the service maps to a ``400``.
        """
        settings = dict(options or {})
        unknown = sorted(set(settings) - set(SERVICE_EXECUTION_KEYS))
        if unknown:
            raise ExperimentError(
                f"unknown execution option(s) {', '.join(unknown)}; a service request "
                f"may set: {', '.join(SERVICE_EXECUTION_KEYS)}"
            )
        return cls(store_path=Path(store_path), cache=True, **settings)

    def resolve(self, spec_or_id: Union[str, ExperimentSpec]) -> "ExecutionPlan":
        """Resolve into the runner + batching plan for one experiment.

        Validation is driven entirely by the spec's capability flags:

        * ``batch=True`` against a spec without a batch path raises
          :class:`~repro.errors.ExperimentError` naming the batchable ids;
        * ``trials`` / ``base_seed`` overrides against a spec that does not
          declare those parameters raise likewise (E10 counts repetitions
          with ``monte_carlo_reps``);
        * ``jobs`` on an experiment that cannot use them resolves to an
          inert plan carrying an explanatory note (surfaced by the CLI)
          instead of silently implying parallelism;
        * ``backend`` names and ``backend_options`` keys are validated
          against the backend registry (:mod:`repro.exec.backends`), and a
          parallel backend with no ``jobs`` resolves as ``jobs=0`` so
          installing a worker fleet actually engages it.
        """
        from ..exec import resolve_runner
        from ..exec.backends import validate_backend_spec

        spec = get_spec(spec_or_id)
        if self.jobs is not None and self.jobs < 0:
            raise ExperimentError(
                f"jobs must be non-negative (0 = one worker per CPU), got {self.jobs}"
            )
        if self.backend is not None:
            validate_backend_spec(self.backend, self.backend_options)
        elif self.backend_options:
            raise ExperimentError(
                "backend_options were given without a backend; set backend= too"
            )
        store_path: Optional[Path] = None
        if self.store_path is not None:
            store_path = Path(self.store_path)
            if store_path.exists() and not store_path.is_dir():
                raise ExperimentError(
                    f"store path {store_path} exists but is not a directory"
                )
        if self.batch and not spec.supports_batch:
            raise ExperimentError(
                f"{spec.experiment_id} has no vectorised batch path; --batch supports the "
                f"batchable experiments ({batchable_experiment_ids()})"
            )
        for name, value in (("trials", self.trials), ("base_seed", self.base_seed)):
            if value is not None and name not in spec.parameter_names:
                raise ExperimentError(
                    f"{spec.experiment_id} has no {name!r} parameter to override; "
                    f"settable parameters are: {', '.join(spec.parameter_names)}"
                )

        # A parallel backend without an explicit --jobs still means "use the
        # workers": resolve as the all-CPUs convention so the runner /
        # point-parallel machinery routes its tasks to the installed backend
        # (which owns the real worker count).
        effective_jobs = self.jobs
        if effective_jobs is None and self.backend not in (None, "in-process"):
            effective_jobs = 0

        runner: Optional["TrialRunner"] = None
        point_jobs: Optional[int] = None
        notes: List[str] = []
        if effective_jobs is not None:
            if self.batch:
                if spec.supports_point_jobs:
                    point_jobs = effective_jobs
                else:
                    notes.append(
                        f"{spec.experiment_id} --batch vectorises its whole Monte-Carlo "
                        "in-process; --jobs has no effect"
                    )
            elif spec.supports_runner:
                runner = resolve_runner(effective_jobs)
            else:
                notes.append(
                    f"{spec.experiment_id} vectorises its Monte-Carlo in-process rather than "
                    "running per-trial simulations; --jobs has no effect"
                )

        return ExecutionPlan(
            spec=spec,
            jobs=self.jobs,
            batch=self.batch,
            runner=runner,
            point_jobs=point_jobs,
            trials=self.trials,
            base_seed=self.base_seed,
            backend=self.backend,
            backend_options=dict(self.backend_options) if self.backend_options else None,
            store_path=store_path,
            cache=self.cache,
            notes=tuple(notes),
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved execution strategy for one specific experiment.

    Produced by :meth:`ExecutionConfig.resolve` (or by the legacy-kwarg shim
    in :func:`resolve_run_options`); drivers read the ``runner`` / ``batch``
    / ``point_jobs`` triple from it and apply the ``trials`` / ``base_seed``
    overrides, so the mapping from settings to behaviour lives here once.
    """

    spec: ExperimentSpec
    jobs: Optional[int] = None
    batch: bool = False
    runner: Optional["TrialRunner"] = None
    point_jobs: Optional[int] = None
    trials: Optional[int] = None
    base_seed: Optional[int] = None
    backend: Optional[str] = None
    backend_options: Optional[Dict[str, Any]] = None
    store_path: Optional[Path] = None
    cache: bool = True
    notes: Tuple[str, ...] = field(default_factory=tuple)

    def create_backend(self) -> Optional[Any]:
        """Build the plan's execution backend, or ``None`` for the default.

        Called exactly once per run by :func:`repro.api.run_experiment`;
        the returned backend is not yet started.
        """
        if self.backend is None:
            return None
        from ..exec.backends import create_backend

        return create_backend(self.backend, self.backend_options, jobs=self.jobs)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary of the plan (stored in run manifests)."""
        if self.runner is None:
            runner_label = "batch" if self.batch else "serial"
        else:
            runner_label = type(self.runner).__name__
        return {
            "jobs": self.jobs,
            "batch": self.batch,
            "runner": runner_label,
            "point_jobs": self.point_jobs,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "backend": {"name": self.backend, "options": dict(self.backend_options or {})}
            if self.backend
            else None,
            "store": {"path": str(self.store_path), "cache": self.cache}
            if self.store_path
            else None,
            "notes": list(self.notes),
        }


def resolve_run_options(
    experiment_id: str,
    *,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
) -> ExecutionPlan:
    """Resolve a driver's execution arguments into one :class:`ExecutionPlan`.

    Called at the top of every driver ``run``.  Exactly one of the two
    styles may be used:

    * ``config=`` — an :class:`ExecutionConfig` (resolved here against the
      registry spec) or an already-resolved :class:`ExecutionPlan` (passed
      through, so :func:`repro.api.run_experiment` resolves exactly once);
    * the legacy ``runner=`` / ``batch=`` / ``point_jobs=`` keywords — kept
      bit-identical for backwards compatibility, but any use emits a single
      :class:`DeprecationWarning` pointing at the unified API.
    """
    legacy = runner is not None or bool(batch) or point_jobs is not None
    if config is not None:
        if legacy:
            raise ExperimentError(
                f"{experiment_id}.run() received both config= and legacy execution "
                "kwargs (runner=/batch=/point_jobs=); pass one or the other"
            )
        if isinstance(config, ExecutionPlan):
            plan = config
        elif isinstance(config, ExecutionConfig):
            plan = config.resolve(experiment_id)
        else:
            raise ExperimentError(
                f"config must be an ExecutionConfig or ExecutionPlan, "
                f"got {type(config).__name__}"
            )
        if plan.spec.experiment_id != experiment_id:
            raise ExperimentError(
                f"execution plan was resolved for {plan.spec.experiment_id}, "
                f"not {experiment_id}"
            )
        return plan

    if legacy:
        warnings.warn(
            f"passing runner=/batch=/point_jobs= directly to {experiment_id}.run() is "
            "deprecated; use repro.api.run_experiment with an ExecutionConfig",
            DeprecationWarning,
            stacklevel=3,
        )
    return ExecutionPlan(
        spec=get_spec(experiment_id),
        batch=bool(batch),
        runner=runner,
        point_jobs=point_jobs,
    )
