"""repro — a reproduction of "Breathe before Speaking" (PODC 2014).

This package implements, from scratch, the Flip model of noisy, limited and
anonymous communication introduced by Feinerman, Haeupler and Korman, the
paper's two-stage noisy-broadcast / majority-consensus protocol, the
clock-free variant of Section 3, a collection of baseline protocols, and the
experiment harness that regenerates the paper's quantitative claims.

Quickstart
----------
>>> from repro import solve_noisy_broadcast
>>> result = solve_noisy_broadcast(n=1000, epsilon=0.25, seed=7)
>>> result.success
True

The registered experiments (E1–E11) run through the unified API in
:mod:`repro.api`: ``run_experiment("E1", config=ExecutionConfig(batch=True))``
returns a run artifact whose report, resolved settings and provenance can be
persisted with ``save_run`` and reloaded with ``load_run``.

See ``README.md`` for the experiment index (E1–E11) and
``docs/ARCHITECTURE.md`` for the architecture overview.
"""

from .core import (
    BroadcastResult,
    ClockFreeBroadcastProtocol,
    ClockFreeBroadcastResult,
    MajorityConsensusResult,
    MajorityInstance,
    NoisyBroadcastProtocol,
    NoisyMajorityConsensusProtocol,
    ProtocolParameters,
    StageOneParameters,
    StageTwoParameters,
    run_clock_free_broadcast,
    run_with_bounded_skew,
    solve_noisy_broadcast,
    solve_noisy_majority_consensus,
    theory,
)
from .errors import (
    ConfigurationError,
    ExperimentError,
    ParameterError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from .substrate import (
    BinarySymmetricChannel,
    Population,
    PushGossipNetwork,
    RandomSource,
    SimulationEngine,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core protocols
    "BroadcastResult",
    "ClockFreeBroadcastProtocol",
    "ClockFreeBroadcastResult",
    "MajorityConsensusResult",
    "MajorityInstance",
    "NoisyBroadcastProtocol",
    "NoisyMajorityConsensusProtocol",
    "ProtocolParameters",
    "StageOneParameters",
    "StageTwoParameters",
    "run_clock_free_broadcast",
    "run_with_bounded_skew",
    "solve_noisy_broadcast",
    "solve_noisy_majority_consensus",
    "theory",
    # substrate
    "BinarySymmetricChannel",
    "Population",
    "PushGossipNetwork",
    "RandomSource",
    "SimulationEngine",
    # errors
    "ReproError",
    "ConfigurationError",
    "ParameterError",
    "ScheduleError",
    "SimulationError",
    "ProtocolError",
    "ExperimentError",
]
