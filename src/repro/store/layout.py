"""On-disk layout of a content-addressed run store.

A store root holds run-artifact directories addressed by their fingerprint,
sharded by the first two hex characters to keep any single directory small::

    store_root/
        index.jsonl                  append-safe lookup index (repro.store.index)
        ab/
            ab3f...e1/               one run artifact (manifest.json, report.json, ...)
            .ab3f...e1.XXXX.tmp/     staging directory of an in-flight save (transient)

The fingerprint *is* the address: :func:`artifact_dir` derives the path from
a validated fingerprint, never from user-controlled strings, so a corrupted
index entry cannot point a reader outside the store.  Staging directories
(written by :func:`repro.store.artifact.save_run` before its atomic
``os.replace`` promotion) are recognisable by their ``.``-prefixed names;
:func:`iter_stale_dirs` finds any that a crashed writer left behind so
``RunStore.gc`` can sweep them.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Tuple, Union

from ..errors import ExperimentError

__all__ = [
    "INDEX_FILE",
    "STALE_GRACE_SECONDS",
    "validate_fingerprint",
    "artifact_dir",
    "relative_artifact_path",
    "iter_artifact_dirs",
    "iter_stale_dirs",
]

#: File name of the append-safe store index, at the store root.
INDEX_FILE = "index.jsonl"

#: A fingerprint is a full sha256 hex digest — nothing else is accepted.
_FINGERPRINT = re.compile(r"^[0-9a-f]{64}$")

#: A shard directory is the first two hex characters of a fingerprint.
_SHARD = re.compile(r"^[0-9a-f]{2}$")


def validate_fingerprint(fingerprint: str) -> str:
    """Return ``fingerprint`` if it is a sha256 hex digest, else raise.

    Derived paths are built from this value, so anything that is not a
    64-character lowercase hex string is rejected with a labelled
    :class:`~repro.errors.ExperimentError` before it can touch the
    filesystem.
    """
    if not isinstance(fingerprint, str) or not _FINGERPRINT.match(fingerprint):
        raise ExperimentError(
            f"{fingerprint!r} is not a run fingerprint (expected 64 lowercase hex characters)"
        )
    return fingerprint


def relative_artifact_path(fingerprint: str) -> str:
    """The store-relative path of a fingerprint's artifact directory."""
    validate_fingerprint(fingerprint)
    return f"{fingerprint[:2]}/{fingerprint}"


def artifact_dir(root: Union[str, Path], fingerprint: str) -> Path:
    """The artifact directory for ``fingerprint`` under ``root``."""
    return Path(root) / fingerprint[:2] / validate_fingerprint(fingerprint)


def iter_artifact_dirs(root: Union[str, Path]) -> Iterator[Tuple[str, Path]]:
    """Yield ``(fingerprint, directory)`` for every artifact in the layout.

    Only directories whose names are layout-conforming (a two-hex shard
    containing full-fingerprint directories) are yielded; staging/garbage
    directories and foreign files are skipped.  Sorted for deterministic
    listings.
    """
    base = Path(root)
    if not base.is_dir():
        return
    for shard in sorted(base.iterdir()):
        if not shard.is_dir() or not _SHARD.match(shard.name):
            continue
        for candidate in sorted(shard.iterdir()):
            if (
                candidate.is_dir()
                and _FINGERPRINT.match(candidate.name)
                and candidate.name.startswith(shard.name)
            ):
                yield candidate.name, candidate


#: Default minimum age (seconds) before a staging directory counts as stale.
STALE_GRACE_SECONDS = 3600.0


def iter_stale_dirs(
    root: Union[str, Path], *, grace_seconds: float = STALE_GRACE_SECONDS
) -> Iterator[Path]:
    """Yield leftover staging/graveyard directories from interrupted saves.

    :func:`repro.store.artifact.save_run` stages into ``.``-prefixed sibling
    directories and promotes atomically; a crash can only ever leave such a
    transient directory behind, never a torn artifact.  ``RunStore.gc``
    removes what this yields.

    A staging directory is only *stale* once it is older than
    ``grace_seconds`` (modification time of the directory itself): a
    ``gc`` racing an **in-flight** ``save_run`` must never sweep the
    staging directory out from under the writer — that would turn a healthy
    put into a failed one.  The default hour dwarfs any real save;
    ``grace_seconds=0`` restores the sweep-everything behaviour for tests
    and for operators who know no writer is live.
    """
    import time

    base = Path(root)
    if not base.is_dir():
        return
    cutoff = time.time() - max(0.0, grace_seconds)
    for shard in sorted(base.iterdir()):
        if not shard.is_dir() or not _SHARD.match(shard.name):
            continue
        for candidate in sorted(shard.iterdir()):
            if candidate.is_dir() and candidate.name.startswith("."):
                try:
                    if candidate.stat().st_mtime > cutoff:
                        continue  # young enough to be an in-flight save
                except OSError:
                    continue  # promoted/removed mid-scan: no longer stale
                yield candidate
