"""Run artifacts: one directory per experiment run, written atomically.

A :class:`RunArtifact` is what :func:`repro.api.run_experiment` returns —
the rendered report plus the fully resolved inputs and provenance.
:func:`save_run` persists it as a directory (``manifest.json``,
``report.json``, optional raw ``sweeps/``/``results/`` payloads) and
:func:`load_run` round-trips it, non-finite report cells included.

Two guarantees distinguish this layer from a plain directory dump:

* **Atomicity.**  ``save_run`` writes every payload into a hidden staging
  directory next to the destination and promotes it with ``os.replace`` —
  the manifest is written last, the promotion is a single rename, and an
  existing destination is swapped out whole.  A crashed or concurrent
  writer can therefore never leave a torn artifact for ``load_run`` or the
  cache layer to trip over: readers observe the old artifact, the new one,
  or (transiently, during a swap) none — never a mixture.
* **Self-verification.**  Every manifest records the run's content
  fingerprint (:func:`repro.store.fingerprint.run_fingerprint` over spec
  id, package version, resolved parameters and the semantic ``batch``
  flag).  ``load_run`` recomputes the fingerprint from the loaded contents
  and refuses — with a labelled :class:`~repro.errors.ExperimentError` — to
  return an artifact whose recorded and recomputed fingerprints disagree,
  so corrupted or hand-edited artifacts no longer load silently.

Attached sweeps additionally record their canonical per-point names
(:meth:`repro.analysis.sweeps.SweepResult.point_names`) in the manifest, so
duplicate grid points stay distinguishable without re-deriving labels.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..errors import ExperimentError
from .fingerprint import run_fingerprint
from .serialization import (
    decode_nonfinite,
    encode_nonfinite,
    load_result,
    load_sweep,
    read_json,
    save_result,
    save_sweep,
    write_json,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only upward references
    from ..analysis.experiments import ExperimentResult
    from ..analysis.sweeps import SweepResult
    from ..experiments.report import ExperimentReport

__all__ = ["RunArtifact", "save_run", "load_run"]

#: Current on-disk layout version of a run-artifact directory.  Version 2
#: added the mandatory ``fingerprint`` manifest field; version-1 artifacts
#: (which predate fingerprinting) still load, without verification.
_ARTIFACT_FORMAT = 2

#: The formats :func:`load_run` understands.
_SUPPORTED_FORMATS = (1, 2)

#: Attached sweep/result payload keys must be safe as file names.
_PAYLOAD_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class RunArtifact:
    """One experiment run: resolved inputs, rendered output, provenance.

    Produced by :func:`repro.api.run_experiment` and persisted/reloaded by
    :func:`save_run` / :func:`load_run`.

    Attributes
    ----------
    spec_id:
        The experiment id from the registry (e.g. ``"E7"``).
    parameters:
        The fully resolved parameter values of the run (spec defaults with
        every override applied).
    execution:
        The resolved execution plan summary
        (:meth:`repro.api.config.ExecutionPlan.describe`), plus — for runs
        that went through a :class:`~repro.store.cache.RunStore` — a
        ``"cache"`` key recording ``"hit"``, ``"miss"`` or ``"bypass"``.
    report:
        The driver's :class:`~repro.experiments.report.ExperimentReport`.
    version:
        The ``repro`` package version that produced the run.
    wall_time_seconds:
        Wall-clock duration of the driver call.
    sweeps / results:
        Optional attached raw payloads, keyed by a file-name-safe label;
        written via the sweep/result writers.
    fingerprint:
        The canonical content fingerprint of the run's semantic inputs
        (computed on demand by :meth:`compute_fingerprint` when unset).
    path:
        The directory the artifact was saved to / loaded from (``None``
        while in memory only).
    """

    spec_id: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)
    report: Optional["ExperimentReport"] = None
    version: str = ""
    wall_time_seconds: float = 0.0
    sweeps: Dict[str, "SweepResult"] = field(default_factory=dict)
    results: Dict[str, "ExperimentResult"] = field(default_factory=dict)
    fingerprint: Optional[str] = None
    path: Optional[Path] = None

    def attach_sweep(self, key: str, sweep: "SweepResult") -> None:
        """Attach a raw sweep payload under a file-name-safe key."""
        _validate_payload_key(key)
        self.sweeps[key] = sweep

    def attach_result(self, key: str, result: "ExperimentResult") -> None:
        """Attach a raw result payload under a file-name-safe key."""
        _validate_payload_key(key)
        self.results[key] = result

    def compute_fingerprint(self) -> str:
        """Recompute the content fingerprint from this artifact's fields.

        Hashes exactly the semantic inputs the fingerprint contract names:
        spec id, package version, resolved parameters and the execution
        summary's ``batch`` flag — never ``jobs``/``backend``/cache state.
        ``save_run`` records this in the manifest and ``load_run`` verifies
        it, so the two must (and do) derive from the same fields.
        """
        return run_fingerprint(
            self.spec_id,
            self.version,
            self.parameters,
            batch=bool(self.execution.get("batch", False)),
        )


def _validate_payload_key(key: str) -> None:
    """Payload keys double as file stems; reject anything path-unsafe."""
    if not _PAYLOAD_KEY.match(key):
        raise ExperimentError(
            f"artifact payload key {key!r} is not a safe file stem "
            "(letters, digits, '.', '_', '-' only)"
        )


def _payload_path(source: Path, section: str, key: str, entry: Dict[str, Any]) -> Path:
    """Resolve one manifest payload entry to a path *inside* the artifact.

    Paths are re-derived from the validated key rather than trusted from the
    manifest, so a hand-edited ``file`` field (absolute, or ``..``-relative)
    cannot make the loader read outside the artifact directory.
    """
    _validate_payload_key(key)
    expected = f"{section}/{key}.json"
    recorded = entry.get("file", expected)
    if recorded != expected:
        raise ExperimentError(
            f"run artifact manifest entry {key!r} records file {recorded!r}, "
            f"outside the artifact layout (expected {expected!r})"
        )
    return source / section / f"{key}.json"


def _write_payloads(artifact: RunArtifact, destination: Path) -> None:
    """Write every artifact payload into ``destination`` (manifest last).

    The manifest is the file ``load_run`` keys off, so writing it only after
    every payload it lists exists means a directory with a manifest is
    always complete — the property the staging/promotion dance in
    :func:`save_run` and the ``gc`` sweep both rely on.
    """
    # Row/column order is part of a rendered table; keep insertion order.
    write_json(
        encode_nonfinite(artifact.report.to_dict()), destination / "report.json", sort_keys=False
    )

    sweep_entries: Dict[str, Any] = {}
    for key, sweep in sorted(artifact.sweeps.items()):
        _validate_payload_key(key)
        save_sweep(sweep, destination / "sweeps" / f"{key}.json")
        sweep_entries[key] = {
            "file": f"sweeps/{key}.json",
            "name": sweep.name,
            "point_names": sweep.point_names(),
        }
    result_entries: Dict[str, Any] = {}
    for key, result in sorted(artifact.results.items()):
        _validate_payload_key(key)
        save_result(result, destination / "results" / f"{key}.json")
        result_entries[key] = {"file": f"results/{key}.json", "name": result.name}

    manifest = {
        "format": _ARTIFACT_FORMAT,
        "spec_id": artifact.spec_id,
        "fingerprint": artifact.fingerprint,
        "parameters": artifact.parameters,
        "execution": artifact.execution,
        "version": artifact.version,
        "wall_time_seconds": artifact.wall_time_seconds,
        "files": {"report": "report.json", "sweeps": sweep_entries, "results": result_entries},
    }
    write_json(encode_nonfinite(manifest), destination / "manifest.json")


def _promote(staging: Path, destination: Path) -> None:
    """Atomically move a fully-written staging directory into place.

    A fresh destination is one ``os.replace``.  An existing destination is
    swapped out whole first (renamed aside, then the staging directory
    renamed in, then the old version deleted) — each step is a single
    rename, so readers only ever see a complete artifact.
    """
    try:
        os.replace(staging, destination)
        return
    except OSError:
        # Destination already exists (non-empty): swap it out whole.
        pass
    graveyard = destination.parent / f"{staging.name}.old"
    os.replace(destination, graveyard)
    try:
        os.replace(staging, destination)
    except BaseException:
        os.replace(graveyard, destination)  # restore the previous artifact
        raise
    shutil.rmtree(graveyard, ignore_errors=True)


def save_run(artifact: RunArtifact, directory: Union[str, Path]) -> Path:
    """Write a :class:`RunArtifact` to ``directory`` and return the directory.

    Layout: ``manifest.json`` (provenance + fingerprint + file listing),
    ``report.json`` (the rendered-table payload, non-finite floats preserved
    via :func:`~repro.store.serialization.encode_nonfinite`),
    ``sweeps/<key>.json`` and ``results/<key>.json`` for the attached raw
    payloads.  The write is atomic: payloads land in a hidden staging
    directory sibling to ``directory`` and are promoted with ``os.replace``,
    so an interrupted save leaves the destination untouched (at most a
    ``.``-prefixed staging directory remains, which ``RunStore.gc`` sweeps).

    Fills in :attr:`RunArtifact.fingerprint` (via
    :meth:`RunArtifact.compute_fingerprint`) when the caller has not.
    """
    if artifact.report is None:
        raise ExperimentError("cannot save a run artifact without a report")
    if artifact.fingerprint is None:
        artifact.fingerprint = artifact.compute_fingerprint()
    destination = Path(directory)
    destination.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(
        tempfile.mkdtemp(prefix=f".{destination.name}.", suffix=".tmp", dir=str(destination.parent))
    )
    try:
        _write_payloads(artifact, staging)
        _promote(staging, destination)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    artifact.path = destination
    return destination


def load_run(directory: Union[str, Path]) -> RunArtifact:
    """Read a :class:`RunArtifact` previously written by :func:`save_run`.

    Round-trips everything the writer recorded — including non-finite report
    cells — re-derives each attached sweep's canonical point names, and
    recomputes the content fingerprint from the loaded manifest, raising a
    labelled :class:`~repro.errors.ExperimentError` when either disagrees
    with what the manifest records (a corrupted or hand-edited artifact).
    """
    # Imported late: the report type lives in repro.experiments, which
    # imports the api/analysis layers that re-export this store.
    from ..experiments.report import ExperimentReport

    source = Path(directory)
    manifest = decode_nonfinite(read_json(source / "manifest.json", "run manifest"))
    manifest_format = manifest.get("format")
    if manifest_format not in _SUPPORTED_FORMATS:
        raise ExperimentError(
            f"unsupported run-artifact format {manifest_format!r} at {source} "
            f"(supported: {', '.join(str(f) for f in _SUPPORTED_FORMATS)})"
        )
    recorded_fingerprint = manifest.get("fingerprint")
    if manifest_format >= 2 and not recorded_fingerprint:
        raise ExperimentError(
            f"run-artifact manifest at {source} records no fingerprint "
            "(required from format 2 on; a corrupted or hand-edited artifact)"
        )
    files = manifest.get("files", {})

    report_payload = decode_nonfinite(
        read_json(source / files.get("report", "report.json"), "run report")
    )
    report = ExperimentReport.from_dict(report_payload)

    sweeps: Dict[str, "SweepResult"] = {}
    for key, entry in files.get("sweeps", {}).items():
        sweep = load_sweep(_payload_path(source, "sweeps", key, entry))
        if entry.get("point_names") is not None and sweep.point_names() != list(
            entry["point_names"]
        ):
            raise ExperimentError(
                f"run artifact at {source} records point names {entry['point_names']!r} "
                f"for sweep {key!r} but the payload derives {sweep.point_names()!r}"
            )
        sweeps[key] = sweep
    results = {
        key: load_result(_payload_path(source, "results", key, entry))
        for key, entry in files.get("results", {}).items()
    }

    artifact = RunArtifact(
        spec_id=str(manifest["spec_id"]),
        parameters=dict(manifest.get("parameters", {})),
        execution=dict(manifest.get("execution", {})),
        report=report,
        version=str(manifest.get("version", "")),
        wall_time_seconds=float(manifest.get("wall_time_seconds", 0.0)),
        sweeps=sweeps,
        results=results,
        fingerprint=recorded_fingerprint,
        path=source,
    )
    if recorded_fingerprint is not None:
        derived = artifact.compute_fingerprint()
        if derived != recorded_fingerprint:
            raise ExperimentError(
                f"run-artifact fingerprint mismatch at {source}: the manifest records "
                f"{recorded_fingerprint} but its contents hash to {derived} "
                "(a corrupted or hand-edited artifact)"
            )
    return artifact
