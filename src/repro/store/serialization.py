"""Strict-JSON codecs and the result/sweep writers behind the run store.

Benchmarks, examples and the unified experiment API save their
:class:`~repro.analysis.experiments.ExperimentResult` /
:class:`~repro.analysis.sweeps.SweepResult` objects so that reported numbers
can be traced back to concrete runs.  JSON is used (rather than pickles) so
results remain inspectable and diff-able.

Non-finite floats (``NaN``, ``±Infinity``) are mapped to ``null`` on the way
out: strict JSON has no token for them, and Python's default
``allow_nan=True`` would happily emit files no strict parser (browsers,
``jq``, other languages) accepts.  ``NaN`` measurements arise legitimately —
e.g. a driver reporting "no trial converged" as a ``NaN`` rounds mean — so
the mapping is done in :func:`to_jsonable` and ``allow_nan=False`` is passed
to ``json.dumps`` as a regression guard: a non-finite float that slips past
the conversion fails loudly at save time instead of producing invalid JSON.

Report tables distinguish ``NaN`` ("no trial converged", rendered ``nan``)
from ``None`` ("not applicable", rendered ``-``), so collapsing both to
``null`` would change a reloaded report.  :func:`encode_nonfinite` /
:func:`decode_nonfinite` therefore tag non-finite floats as
``{"__nonfinite__": "nan" | "inf" | "-inf"}`` inside report, manifest and
fingerprint payloads — still strict JSON, but round-tripping to the exact
same rendered table (and hashing to the exact same fingerprint, see
:mod:`repro.store.fingerprint`).

Every file written here goes through :func:`write_json`, which writes to a
temporary file in the destination directory and promotes it with
:func:`os.replace` — a crashed or concurrent writer can therefore never
leave a torn half-written JSON file behind for a reader to trip over.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

import numpy as np

from ..errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - annotation-only upward references
    from ..analysis.experiments import ExperimentResult
    from ..analysis.sweeps import SweepResult

__all__ = [
    "to_jsonable",
    "encode_nonfinite",
    "decode_nonfinite",
    "write_json",
    "read_json",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
]

#: Payload key tagging an encoded non-finite float.
NONFINITE_KEY = "__nonfinite__"


def _jsonable(value: Any, nonfinite: Any, guard_reserved: bool) -> Any:
    """Shared recursive conversion behind the two public converters.

    ``nonfinite`` maps a non-finite float to its JSON stand-in;
    ``guard_reserved`` rejects payloads already using the tag key (only
    meaningful when ``nonfinite`` produces tagged dicts).
    """
    if isinstance(value, dict):
        if guard_reserved and NONFINITE_KEY in value:
            raise ExperimentError(
                f"payload already contains the reserved key {NONFINITE_KEY!r}"
            )
        return {
            str(key): _jsonable(item, nonfinite, guard_reserved)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item, nonfinite, guard_reserved) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item, nonfinite, guard_reserved) for item in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        as_float = float(value)
        return as_float if math.isfinite(as_float) else nonfinite(as_float)
    return value


def to_jsonable(value: Any) -> Any:
    """Recursively convert a value so strict ``json`` can serialise it.

    Numpy scalars/arrays become their Python equivalents, and non-finite
    floats (``NaN``, ``±Infinity`` — numpy or builtin) become ``None``, since
    strict JSON cannot represent them (see the module docstring).
    """
    return _jsonable(value, lambda _: None, guard_reserved=False)


def _tag_nonfinite(as_float: float) -> Dict[str, str]:
    """The strict-JSON stand-in for one non-finite float."""
    if math.isnan(as_float):
        return {NONFINITE_KEY: "nan"}
    return {NONFINITE_KEY: "inf" if as_float > 0 else "-inf"}


def encode_nonfinite(value: Any) -> Any:
    """Like :func:`to_jsonable`, but keep non-finite floats distinguishable.

    ``NaN`` / ``±Infinity`` become ``{"__nonfinite__": "nan" | "inf" |
    "-inf"}`` instead of ``null``, so payloads that carry both "no data"
    (``None``) and "not a number" (``NaN``) — report tables, manifests —
    survive a round-trip exactly.  :func:`decode_nonfinite` is the inverse.
    """
    return _jsonable(value, _tag_nonfinite, guard_reserved=True)


def decode_nonfinite(value: Any) -> Any:
    """Inverse of :func:`encode_nonfinite` (tagged dicts back to floats)."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_KEY}:
            return float(value[NONFINITE_KEY])
        return {key: decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(item) for item in value]
    return value


def write_json(payload: Any, path: Path, sort_keys: bool = True) -> Path:
    """Write an already-jsonable payload as strict JSON, atomically.

    The text lands in a temporary sibling file first and is promoted into
    place with :func:`os.replace`, so readers only ever observe the old file
    or the complete new one — never a torn write.  ``sort_keys=False`` is
    for payloads whose key order is meaningful — report rows render their
    columns in insertion order.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=sort_keys, allow_nan=False)
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already promoted or removed
            pass
        raise
    return path


def read_json(path: Path, kind: str) -> Any:
    """Read one JSON file, raising a labelled error when it is missing."""
    if not path.exists():
        raise ExperimentError(f"no {kind} file at {path}")
    return json.loads(path.read_text())


def save_result(result: "ExperimentResult", path: Union[str, Path]) -> Path:
    """Write an :class:`ExperimentResult` to ``path`` as strict JSON and return the path."""
    return write_json(to_jsonable(result.to_dict()), Path(path))


def load_result(path: Union[str, Path]) -> "ExperimentResult":
    """Read an :class:`ExperimentResult` previously written by :func:`save_result`."""
    # Imported late: the result types live in the analysis layer, which
    # itself re-exports this module's writers at package import time.
    from ..analysis.experiments import ExperimentResult

    return ExperimentResult.from_dict(read_json(Path(path), "result"))


def save_sweep(sweep: "SweepResult", path: Union[str, Path]) -> Path:
    """Write a :class:`SweepResult` to ``path`` as strict JSON and return the path."""
    return write_json(to_jsonable(sweep.to_dict()), Path(path))


def load_sweep(path: Union[str, Path]) -> "SweepResult":
    """Read a :class:`SweepResult` previously written by :func:`save_sweep`."""
    from ..analysis.sweeps import SweepResult

    return SweepResult.from_dict(read_json(Path(path), "sweep"))
