"""The append-safe store index: one JSON line per stored run.

``index.jsonl`` at the store root is a lookup accelerator (and a ``ls``
listing source) for the content-addressed layout — the artifact directories
themselves remain the source of truth.  The format is chosen for safe
concurrent appends:

* every entry is one compact JSON object terminated by a newline, written
  with a **single** ``write`` call on a file opened in append mode — on
  POSIX, ``O_APPEND`` writes of one small line do not interleave, so two
  processes recording runs concurrently cannot corrupt each other's entries;
* readers parse line by line and *skip* anything unparseable (a torn final
  line from a crashed writer, a truncated copy), so a damaged index degrades
  to a slower listing, never to an error;
* re-recording a fingerprint is idempotent: readers keep the **last** entry
  per fingerprint, so refreshed runs simply append a newer line.

Single-line ``O_APPEND`` writes make *whole entries* safe, but an OS is
free to interleave appends from many writers at arbitrary granularity on
some filesystems (NFS being the notorious one), and the service layer
(:mod:`repro.service`) adds many concurrent in-process writers.  Appends
are therefore additionally serialised through a per-store **lock file**
(``index.jsonl.lock``): :func:`index_lock` takes an exclusive advisory
lock via ``fcntl`` on POSIX or ``msvcrt`` on Windows (and degrades to a
no-op where neither exists — the single-write discipline still holds).
The lock file is a separate, empty sibling so locking never touches the
index's own contents.

:func:`rebuild` regenerates the file from the layout scan (atomically, via
temp-file + ``os.replace``) — ``RunStore.gc`` calls it after sweeping.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Union

from ..errors import ExperimentError
from .layout import INDEX_FILE

try:  # POSIX advisory locks
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None
try:  # Windows region locks
    import msvcrt
except ImportError:
    msvcrt = None

__all__ = [
    "index_path",
    "index_lock",
    "file_lock",
    "append_jsonl",
    "read_jsonl",
    "append_entry",
    "read_entries",
    "rebuild",
]

#: Name of the per-store lock file serialising index appends.
LOCK_FILE = INDEX_FILE + ".lock"


@contextlib.contextmanager
def file_lock(path: Union[str, Path]) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path`` for the ``with`` body.

    The generic primitive behind :func:`index_lock`, reused by any other
    append-only file that needs serialised writers (the service's durable
    job journal locks ``journal.jsonl.lock`` the same way).  Locks the file
    (created on first use) with ``fcntl.flock`` on POSIX or
    ``msvcrt.locking`` on Windows; both are advisory, block until the
    holder releases, and are released by the OS even if the holding process
    dies.  On platforms with neither primitive the context is a no-op —
    callers keep entries whole by writing each as one single-write appended
    line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+b") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        elif msvcrt is not None:  # pragma: no cover - Windows only
            handle.seek(0)
            msvcrt.locking(handle.fileno(), msvcrt.LK_LOCK, 1)
            try:
                yield
            finally:
                handle.seek(0)
                msvcrt.locking(handle.fileno(), msvcrt.LK_UNLCK, 1)
        else:  # pragma: no cover - exotic platform
            yield


@contextlib.contextmanager
def index_lock(root: Union[str, Path]) -> Iterator[None]:
    """Hold the store's exclusive index-append lock for the ``with`` body.

    A :func:`file_lock` on the store's ``index.jsonl.lock`` — a separate,
    empty sibling of the index, so locking never touches the index's own
    contents.
    """
    with file_lock(Path(root) / LOCK_FILE):
        yield


def index_path(root: Union[str, Path]) -> Path:
    """The index file path under a store root."""
    return Path(root) / INDEX_FILE


def append_jsonl(path: Union[str, Path], entry: Dict[str, Any]) -> None:
    """Append ``entry`` to the JSONL file at ``path`` as one locked line.

    The generic append behind :func:`append_entry`, shared with the
    service's job journal: the entry is serialised compactly, written with
    a single ``write`` on a file opened in append mode, and serialised
    against other writers through :func:`file_lock` on ``<path>.lock``.
    """
    path = Path(path)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    with file_lock(path.with_name(path.name + ".lock")):
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(line)


def read_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield the parseable JSON-object lines of ``path``, skipping damage.

    The torn-tail-tolerant read behind :func:`read_entries`, shared with
    the service's job journal: unparseable lines (a torn final line from a
    crashed writer, a truncated copy) and non-object lines are skipped
    rather than raised, so a damaged file degrades to fewer entries, never
    to an error.  A missing file yields nothing.
    """
    path = Path(path)
    if not path.exists():
        return
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn/partial line: tolerated by design
        if isinstance(entry, dict):
            yield entry


def append_entry(root: Union[str, Path], entry: Dict[str, Any]) -> None:
    """Record one run in the index (one atomic single-write JSON line).

    ``entry`` must be strict-JSON-serialisable and carry at least a
    ``fingerprint`` key; anything else (spec id, version, wall time) is
    caller-defined metadata surfaced by listings.

    The write happens under the store's :func:`index_lock`, so concurrent
    writers — service worker threads, parallel CLI invocations — append
    strictly one after another instead of relying on the filesystem's
    append-interleaving behaviour.
    """
    if "fingerprint" not in entry:
        raise ExperimentError("a store index entry must carry a 'fingerprint' key")
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
    path = index_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    with index_lock(root):
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(line)


def read_entries(root: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Read the index into a ``fingerprint -> entry`` mapping (last wins).

    Unparseable lines — a torn tail from a crashed writer — are skipped
    rather than raised, so the index can always be read after a crash; the
    layout scan (``RunStore.entries`` / ``gc``) backfills anything the index
    is missing.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    for entry in read_jsonl(index_path(root)):
        if isinstance(entry.get("fingerprint"), str):
            entries[entry["fingerprint"]] = entry
    return entries


def rebuild(root: Union[str, Path], entries: Iterable[Dict[str, Any]]) -> Path:
    """Atomically rewrite the index from ``entries`` (temp file + replace)."""
    path = index_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(entry, sort_keys=True, separators=(",", ":"), allow_nan=False)
        for entry in entries
    ]
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{INDEX_FILE}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write("".join(line + "\n" for line in lines))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already promoted or removed
            pass
        raise
    return path
