"""repro.store — persistence and the content-addressed run store.

This package is the persistence layer of the reproduction, carved out of
the old ``repro.analysis.resultsio`` module (which remains as a deprecated
re-export shim) and extended into a content-addressed, cache-before-compute
run store:

* :mod:`repro.store.serialization` — the strict-JSON codecs
  (:func:`to_jsonable`, :func:`encode_nonfinite` / :func:`decode_nonfinite`)
  and the atomic result/sweep writers
  (:func:`save_result`/:func:`load_result`,
  :func:`save_sweep`/:func:`load_sweep`);
* :mod:`repro.store.fingerprint` — :func:`run_fingerprint`, the canonical
  sha256 over a run's *semantic* inputs (spec id, package version, resolved
  parameters, the ``batch`` flag — explicitly not ``jobs``/``backend``,
  which the determinism contract proves result-irrelevant);
* :mod:`repro.store.artifact` — :class:`RunArtifact` plus the atomic
  :func:`save_run` / fingerprint-verifying :func:`load_run` pair;
* :mod:`repro.store.layout` / :mod:`repro.store.index` — the
  ``store_root/<fp[:2]>/<fp>/`` directory layout and the append-safe
  ``index.jsonl``;
* :mod:`repro.store.cache` — :class:`RunStore`, the get-or-run policy
  :func:`repro.api.run_experiment` consults (hit → load + verify, miss →
  compute + persist).

Typical use::

    from repro.store import RunStore

    store = RunStore("runs/store")
    artifact = store.get_or_run("E8", set_sizes=(50, 200))   # computes
    again = store.get_or_run("E8", set_sizes=(50, 200))      # cache hit
    assert again.execution["cache"] == "hit"
"""

from __future__ import annotations

from .artifact import RunArtifact, load_run, save_run
from .cache import RunStore, StoreWriteError
from .fingerprint import (
    EXCLUDED_PLAN_FIELDS,
    FINGERPRINT_FIELDS,
    canonical_json,
    fingerprint_payload,
    run_fingerprint,
)
from .index import append_entry, index_lock, read_entries
from .layout import artifact_dir, iter_artifact_dirs, validate_fingerprint
from .serialization import (
    decode_nonfinite,
    encode_nonfinite,
    load_result,
    load_sweep,
    save_result,
    save_sweep,
    to_jsonable,
)

__all__ = [
    "to_jsonable",
    "encode_nonfinite",
    "decode_nonfinite",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "RunArtifact",
    "save_run",
    "load_run",
    "run_fingerprint",
    "fingerprint_payload",
    "canonical_json",
    "FINGERPRINT_FIELDS",
    "EXCLUDED_PLAN_FIELDS",
    "RunStore",
    "StoreWriteError",
    "artifact_dir",
    "iter_artifact_dirs",
    "validate_fingerprint",
    "append_entry",
    "index_lock",
    "read_entries",
]
