"""The cache-before-compute policy: :class:`RunStore` memoizes experiment runs.

A :class:`RunStore` wraps a content-addressed store root (see
:mod:`repro.store.layout`) with the serving-path policy ROADMAP item 1
needs: identical requests must become cache hits, not recomputes.  The
lookup key is the run fingerprint (:mod:`repro.store.fingerprint`), which
covers exactly the semantic inputs — spec id, package version, resolved
parameters, the ``batch`` flag — and deliberately excludes ``jobs`` /
``backend``: the determinism contract proves results bit-identical across
execution strategies, so a run computed serially is a valid hit for a
remote-fleet request and vice versa.

The policy, as implemented by :meth:`RunStore.get_or_run` (a thin wrapper
arranging for :func:`repro.api.run_experiment` to consult this store):

* **hit** — the fingerprint's artifact directory exists: load it, verify
  the recorded fingerprint (corrupt artifacts raise, they are never served),
  mark ``execution["cache"] = "hit"`` on the returned artifact;
* **miss** — compute through the normal driver path, persist the artifact
  under its fingerprint (atomically), record ``"miss"`` in its manifest;
* **bypass** — caching disabled (``cache=False`` / ``--no-cache``): skip
  the lookup but still persist, refreshing whatever was stored.

Maintenance operations back the ``repro-flip store`` CLI subcommand:
:meth:`entries` (``ls``), :meth:`verify` and :meth:`gc` (sweep stale
staging directories and corrupt artifacts, then rebuild the index).
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ExperimentError
from ..testing import chaos
from .artifact import RunArtifact, load_run, save_run
from .index import append_entry, read_entries, rebuild
from .layout import (
    STALE_GRACE_SECONDS,
    artifact_dir,
    iter_artifact_dirs,
    iter_stale_dirs,
    relative_artifact_path,
    validate_fingerprint,
)

__all__ = ["StoreWriteError", "RunStore"]


class StoreWriteError(ExperimentError):
    """Persisting an artifact failed for *environmental* reasons.

    The store's failure taxonomy distinguishes two kinds of trouble: a
    **corrupt artifact** (fingerprint mismatch, unreadable payload — a data
    problem, raised as a plain :class:`~repro.errors.ExperimentError` by
    :meth:`RunStore.get`/:meth:`RunStore.verify`) and a **failed write**
    (disk full, read-only filesystem, permissions — an environment problem,
    raised as this subclass by :meth:`RunStore.put`).  The distinction is
    what lets :func:`repro.api.run_experiment` degrade gracefully: a
    computed result is still perfectly good when only its persistence
    failed, so write failures are recorded on the artifact instead of
    destroying the run, and the experiment service flips into a degraded
    compute-only mode rather than answering 500.
    """

    def __init__(self, root: Path, cause: BaseException):
        """Label the failed store and keep the driving ``cause``."""
        super().__init__(
            f"failed to persist run artifact into store {root}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.root = root
        self.cause = cause

#: Process-wide per-``(store root, fingerprint)`` compute locks.  Keyed by
#: the *resolved* root so two ``RunStore`` objects wrapping the same
#: directory share locks; guarded by one registry mutex.  Entries are tiny
#: ``threading.Lock`` objects and are kept for the process lifetime — the
#: population is bounded by the number of distinct fingerprints computed.
_COMPUTE_LOCKS: Dict[Tuple[str, str], threading.Lock] = {}
_COMPUTE_LOCKS_GUARD = threading.Lock()


class RunStore:
    """A content-addressed store of run artifacts with get-or-run semantics.

    ``RunStore(root)`` neither creates nor touches ``root`` until something
    is stored; all methods take and return full fingerprints (the CLI layer
    resolves prefixes via :meth:`resolve_prefix`).
    """

    def __init__(self, root: Union[str, Path]):
        """Wrap ``root`` (created lazily on first :meth:`put`)."""
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ExperimentError(f"store path {self.root} exists but is not a directory")

    def artifact_dir(self, fingerprint: str) -> Path:
        """The (possibly not yet existing) directory for ``fingerprint``."""
        return artifact_dir(self.root, fingerprint)

    def contains(self, fingerprint: str) -> bool:
        """Whether a complete artifact is stored under ``fingerprint``."""
        return (self.artifact_dir(fingerprint) / "manifest.json").exists()

    def get(self, fingerprint: str) -> Optional[RunArtifact]:
        """Load the artifact stored under ``fingerprint``, or ``None`` on a miss.

        A *corrupt* stored artifact (unreadable payloads, fingerprint
        mismatch, artifact filed under the wrong address) raises a labelled
        :class:`~repro.errors.ExperimentError` rather than masquerading as
        a miss — serving silently-recomputed results for a corrupted store
        would hide the corruption.  ``repro-flip store gc`` sweeps it.
        """
        validate_fingerprint(fingerprint)
        if not self.contains(fingerprint):
            return None
        try:
            artifact = load_run(self.artifact_dir(fingerprint))
        except ExperimentError as error:
            raise ExperimentError(
                f"stored run {fingerprint} failed verification: {error} "
                f"(sweep it with: repro-flip store gc --store {self.root})"
            ) from error
        if artifact.fingerprint is not None and artifact.fingerprint != fingerprint:
            raise ExperimentError(
                f"store layout corruption: the artifact under {fingerprint} carries "
                f"fingerprint {artifact.fingerprint} "
                f"(sweep it with: repro-flip store gc --store {self.root})"
            )
        return artifact

    def put(self, artifact: RunArtifact) -> Path:
        """Persist ``artifact`` under its fingerprint and index it.

        Computes the fingerprint if the artifact does not carry one yet.
        The write is atomic (see :func:`repro.store.artifact.save_run`), and
        re-putting the same fingerprint simply replaces the stored version.

        Environmental write failures — disk full, read-only filesystem,
        permissions — are raised as :class:`StoreWriteError` so callers can
        tell "the disk is unhappy" (degrade, retry later) from "the data is
        bad" (a plain :class:`~repro.errors.ExperimentError`).  The
        ``store.put`` chaos point (:mod:`repro.testing.chaos`) fires first,
        so recovery tests can stage exactly these failures.
        """
        if artifact.fingerprint is None:
            artifact.fingerprint = artifact.compute_fingerprint()
        try:
            chaos.fire("store.put", fingerprint=artifact.fingerprint, store=str(self.root))
            destination = save_run(artifact, self.artifact_dir(artifact.fingerprint))
            append_entry(
                self.root,
                {
                    "fingerprint": artifact.fingerprint,
                    "spec_id": artifact.spec_id,
                    "version": artifact.version,
                    "path": relative_artifact_path(artifact.fingerprint),
                    "wall_time_seconds": artifact.wall_time_seconds,
                },
            )
        except OSError as error:
            raise StoreWriteError(self.root, error) from error
        return destination

    def compute_lock(self, fingerprint: str) -> threading.Lock:
        """The process-wide compute lock for one fingerprint of this store.

        :func:`repro.api.run_experiment` wraps its miss path in this lock
        and re-checks the store after acquiring it (the classic
        double-checked pattern), so two simultaneous identical submissions
        — e.g. the same request arriving twice at the experiment service —
        run the simulation exactly once: the second submitter blocks on the
        first's lock, then finds the freshly persisted artifact and serves
        it as a hit.  Distinct fingerprints never contend.
        """
        key = (str(self.root.resolve()), validate_fingerprint(fingerprint))
        with _COMPUTE_LOCKS_GUARD:
            lock = _COMPUTE_LOCKS.get(key)
            if lock is None:
                lock = _COMPUTE_LOCKS[key] = threading.Lock()
        return lock

    def get_or_run(self, spec_or_id: Any, *, config: Any = None, **overrides: Any) -> RunArtifact:
        """Run an experiment through this store: cache hit, or compute + persist.

        A thin wrapper over :func:`repro.api.run_experiment` that installs
        this store on the :class:`~repro.api.config.ExecutionConfig` — the
        lookup itself happens inside ``run_experiment`` (before any
        execution backend is created), so the CLI's ``--store`` flag and
        this method share one code path and one policy.
        """
        # Imported lazily: repro.api sits above this store layer.
        from ..api.config import ExecutionConfig
        from ..api.run import run_experiment

        if config is None:
            config = ExecutionConfig()
        if not isinstance(config, ExecutionConfig):
            raise ExperimentError(
                "RunStore.get_or_run needs an ExecutionConfig (an already-resolved "
                f"ExecutionPlan carries its own store), got {type(config).__name__}"
            )
        if config.store_path is not None and Path(config.store_path) != self.root:
            raise ExperimentError(
                f"the ExecutionConfig names store {config.store_path} but get_or_run "
                f"was called on the store at {self.root}; pass one store"
            )
        return run_experiment(spec_or_id, config=replace(config, store_path=self.root), **overrides)

    def entries(self) -> List[Dict[str, Any]]:
        """One listing entry per stored artifact, index metadata attached.

        The layout scan is the source of truth (an artifact is listed iff
        its directory exists); the append-safe index contributes the cheap
        metadata (spec id, version, wall time).  Artifacts the index has no
        line for — e.g. after a torn index tail was skipped — are flagged
        ``"indexed": False`` so ``gc`` (which rebuilds the index) can be
        suggested.
        """
        indexed = read_entries(self.root)
        listing: List[Dict[str, Any]] = []
        for fingerprint, _ in iter_artifact_dirs(self.root):
            entry = dict(indexed.get(fingerprint, {}))
            entry["fingerprint"] = fingerprint
            entry["path"] = relative_artifact_path(fingerprint)
            entry["indexed"] = fingerprint in indexed
            listing.append(entry)
        return listing

    def resolve_prefix(self, prefix: str) -> str:
        """Resolve a unique fingerprint prefix against the stored artifacts.

        An ambiguous prefix raises an :class:`~repro.errors.ExperimentError`
        that *lists* the matching fingerprints (truncated, at most eight) —
        the service surfaces this message in its ``409`` responses, so a
        caller can immediately re-request with a longer prefix instead of
        guessing.
        """
        if not prefix:
            raise ExperimentError("empty fingerprint prefix")
        matches = [
            fingerprint
            for fingerprint, _ in iter_artifact_dirs(self.root)
            if fingerprint.startswith(prefix)
        ]
        if not matches:
            raise ExperimentError(f"no stored run matches fingerprint prefix {prefix!r}")
        if len(matches) > 1:
            shown = [candidate[: max(len(prefix) + 6, 12)] for candidate in sorted(matches)[:8]]
            if len(matches) > len(shown):
                shown.append("...")
            raise ExperimentError(
                f"fingerprint prefix {prefix!r} is ambiguous ({len(matches)} matches: "
                f"{', '.join(shown)}); extend the prefix to pick one"
            )
        return matches[0]

    def verify(self, fingerprint: Optional[str] = None) -> List[Dict[str, Any]]:
        """Verify one stored artifact (or all): load + fingerprint recompute.

        Returns one ``{"fingerprint", "ok", "error"}`` record per artifact
        checked; never raises for a corrupt artifact (the point is the
        report).  *Any* failure loading an artifact quarantines it as
        ``ok=False`` — not only the labelled
        :class:`~repro.errors.ExperimentError` cases but also arbitrary
        decode crashes from hand-mangled payloads (a report body of the
        wrong shape raises ``KeyError``/``TypeError`` deep in the
        deserialisers); a corrupt artifact must never be able to crash the
        sweep that exists to find it.
        """
        if fingerprint is not None:
            targets = [(validate_fingerprint(fingerprint), self.artifact_dir(fingerprint))]
        else:
            targets = list(iter_artifact_dirs(self.root))
        report: List[Dict[str, Any]] = []
        for candidate, directory in targets:
            try:
                artifact = load_run(directory)
                if artifact.fingerprint != candidate:
                    raise ExperimentError(
                        f"artifact carries fingerprint {artifact.fingerprint}, "
                        f"filed under {candidate}"
                    )
                report.append({"fingerprint": candidate, "ok": True, "error": None})
            except Exception as error:  # quarantine, never crash the sweep
                report.append(
                    {
                        "fingerprint": candidate,
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
        return report

    def gc(self, *, stale_grace_seconds: float = STALE_GRACE_SECONDS) -> Dict[str, Any]:
        """Sweep the store: stale staging dirs, corrupt artifacts, the index.

        Removes leftover ``.``-prefixed staging/graveyard directories from
        interrupted saves, removes artifacts that fail :meth:`verify`, then
        rebuilds ``index.jsonl`` from the surviving artifacts.  Returns a
        summary of what was removed and kept.

        ``stale_grace_seconds`` protects saves racing the sweep: a staging
        directory younger than the grace (default one hour) is an in-flight
        :func:`~repro.store.artifact.save_run`, and sweeping it would make
        that writer's atomic promotion fail — pass ``0`` only when no
        writer can be live.
        """
        removed_stale = []
        for stale in iter_stale_dirs(self.root, grace_seconds=stale_grace_seconds):
            shutil.rmtree(stale, ignore_errors=True)
            removed_stale.append(str(stale.relative_to(self.root)))

        removed_corrupt = []
        kept_entries: List[Dict[str, Any]] = []
        indexed = read_entries(self.root)
        for fingerprint, directory in list(iter_artifact_dirs(self.root)):
            outcome = self.verify(fingerprint)[0]
            if outcome["ok"]:
                entry = dict(indexed.get(fingerprint, {}))
                entry.setdefault("fingerprint", fingerprint)
                entry["path"] = relative_artifact_path(fingerprint)
                if not entry.get("spec_id"):
                    # Backfill metadata for artifacts the index never saw.
                    artifact = load_run(directory)
                    entry["spec_id"] = artifact.spec_id
                    entry["version"] = artifact.version
                    entry["wall_time_seconds"] = artifact.wall_time_seconds
                kept_entries.append(entry)
            else:
                shutil.rmtree(directory, ignore_errors=True)
                removed_corrupt.append(fingerprint)
        if self.root.is_dir():
            rebuild(self.root, kept_entries)
        return {
            "removed_stale": removed_stale,
            "removed_corrupt": removed_corrupt,
            "kept": len(kept_entries),
        }
