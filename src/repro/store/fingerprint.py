"""Canonical content fingerprints: one sha256 per semantically distinct run.

The cache-before-compute policy of :class:`repro.store.cache.RunStore` is
only sound because of the determinism contract (``docs/ARCHITECTURE.md``):
two runs with the same *semantic* inputs produce bit-identical reports, so
replaying a stored artifact is indistinguishable from recomputing it.  This
module defines exactly what "same semantic inputs" means:

* the experiment id (``"E1"``..``"E12"``),
* the ``repro`` package version that would produce the run,
* the fully **resolved** parameters (spec defaults with every override
  applied — so a default left implicit and the same value passed explicitly
  hash identically),
* and, of the execution plan, only the ``batch`` flag.  The batch path draws
  its randomness from a batch-level stream instead of per-trial streams, so
  ``batch`` genuinely changes the numbers; ``trials`` and ``base_seed``
  overrides are folded into the resolved parameters by
  :func:`repro.api.run_experiment` before fingerprinting, so they are
  covered through the parameter payload.

Everything else on the plan — ``jobs``, ``point_jobs``, the runner class,
``backend`` and its options — is **excluded by design**: the determinism
contract proves results are bit-identical across serial, pooled and remote
execution, so a run computed on one backend must be a cache hit for every
other.

Canonicalisation removes spelling differences before hashing: dict keys are
sorted (insertion order never matters), tuples and numpy arrays become
lists, numpy scalars become their Python equivalents, and non-finite floats
are tagged with the same strict-JSON markers the artifact manifests use
(:func:`repro.store.serialization.encode_nonfinite`), so a ``NaN`` parameter
read back from a manifest re-hashes to the fingerprint it was stored under.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from .serialization import encode_nonfinite

__all__ = [
    "canonical_json",
    "fingerprint_payload",
    "run_fingerprint",
    "FINGERPRINT_FIELDS",
    "EXCLUDED_PLAN_FIELDS",
]

#: The semantic inputs a run fingerprint covers, in payload order.
FINGERPRINT_FIELDS = ("spec_id", "version", "parameters", "execution.batch")

#: Plan fields deliberately excluded: the determinism contract proves them
#: result-irrelevant, so changing them must *not* change the fingerprint.
EXCLUDED_PLAN_FIELDS = (
    "jobs",
    "point_jobs",
    "runner",
    "backend",
    "backend_options",
    "notes",
    "store",
    "cache",
)


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to its one canonical strict-JSON spelling.

    Dict keys are stringified and sorted, tuples/numpy sequences become
    lists, numpy scalars become Python scalars, and non-finite floats are
    tagged via :func:`~repro.store.serialization.encode_nonfinite` — so any
    two spellings of the same semantic value serialise byte-identically.
    """
    return json.dumps(
        encode_nonfinite(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_payload(payload: Any) -> str:
    """The sha256 hex digest of ``payload``'s canonical JSON spelling."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def run_fingerprint(
    spec_id: str,
    version: str,
    parameters: Optional[Mapping[str, Any]] = None,
    *,
    batch: bool = False,
) -> str:
    """Fingerprint one run from its semantic inputs (see module docstring).

    ``parameters`` must be the *fully resolved* parameter mapping (defaults
    with overrides applied, ``trials``/``base_seed`` plan overrides already
    folded in), exactly as :func:`repro.api.run_experiment` records it in
    the artifact manifest — which is what lets
    :func:`repro.store.artifact.load_run` recompute and verify the
    fingerprint from the manifest alone.
    """
    payload: Dict[str, Any] = {
        "spec_id": str(spec_id),
        "version": str(version),
        "parameters": dict(parameters or {}),
        "execution": {"batch": bool(batch)},
    }
    return fingerprint_payload(payload)
