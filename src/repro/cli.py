"""Command-line interface to the protocol runners and experiment drivers.

Installed as ``repro-flip``.  Three subcommands cover the common workflows:

* ``repro-flip broadcast --n 2000 --epsilon 0.2`` — run the paper's noisy
  broadcast protocol once and print the outcome;
* ``repro-flip majority --n 2000 --epsilon 0.2 --set-size 300 --bias 0.1`` —
  run the noisy majority-consensus protocol once;
* ``repro-flip experiment E1 --jobs 4`` — run one of the experiment drivers
  (the E1–E11 table in ``README.md``) and print its report.

The ``experiment`` subcommand is a thin shell over the unified experiment
API (:mod:`repro.api`): the experiment registry supplies the valid ids,
capability help/error text (``--batch`` support comes from
:attr:`~repro.api.spec.ExperimentSpec.supports_batch` flags, never from
signature introspection) and the parameter names ``--set key=value`` may
override; :class:`~repro.api.config.ExecutionConfig` resolves ``--jobs`` /
``--batch`` / ``--trials`` / ``--seed`` into an execution plan; and
``--save DIR`` persists the returned
:class:`~repro.store.RunArtifact` (manifest + report payload)
for later reloading with :func:`~repro.store.load_run`.

``--store DIR`` memoizes the run through the content-addressed
:class:`~repro.store.RunStore` (an identical semantic request is a cache
hit, served without creating any execution backend; ``--no-cache``
recomputes and refreshes the stored artifact), and the ``store``
subcommand administers such a store: ``repro-flip store ls|show|verify|gc
--store DIR``.

``repro-flip serve --store DIR`` stands the experiment service up
(:mod:`repro.service`): submit runs over HTTP as async jobs, poll
results, and let every repeated parameter point be a store-served cache
hit — see the "Serving experiments" section of ``README.md``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional, Sequence

from .analysis.tables import render_kv, render_table
from .api import ExecutionConfig, RunStore, batchable_experiment_ids, experiment_ids, get_spec, run_experiment, save_run
from .core.broadcast import solve_noisy_broadcast
from .core.majority import solve_noisy_majority_consensus
from .core.synchronizer import run_clock_free_broadcast
from .errors import ExperimentError

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-flip",
        description="Noisy broadcast / majority-consensus in the Flip model (PODC 2014 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    broadcast = subparsers.add_parser("broadcast", help="run the noisy broadcast protocol once")
    broadcast.add_argument("--n", type=int, default=1000, help="population size")
    broadcast.add_argument("--epsilon", type=float, default=0.2, help="noise margin (flip prob = 1/2 - epsilon)")
    broadcast.add_argument("--seed", type=int, default=0, help="root random seed")
    broadcast.add_argument(
        "--clock-free", action="store_true", help="use the Section-3 protocol without a global clock"
    )

    majority = subparsers.add_parser("majority", help="run the noisy majority-consensus protocol once")
    majority.add_argument("--n", type=int, default=1000)
    majority.add_argument("--epsilon", type=float, default=0.2)
    majority.add_argument("--seed", type=int, default=0)
    majority.add_argument("--set-size", type=int, default=200, help="size of the initial opinionated set A")
    majority.add_argument("--bias", type=float, default=0.1, help="majority-bias of the initial set")

    experiment = subparsers.add_parser("experiment", help="run an experiment driver (E1..E11)")
    experiment.add_argument("experiment_id", choices=experiment_ids())
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run Monte-Carlo trials across N worker processes (0 = one per CPU, default: serial); "
        "results are identical to a serial run for the same seeds",
    )
    experiment.add_argument(
        "--batch",
        action="store_true",
        help="simulate all trials of each sweep point at once with the vectorised batch path "
        f"({batchable_experiment_ids()}; deterministic per base seed, but drawn from a "
        "batch-level random stream instead of per-trial streams); combine with --jobs to "
        "additionally run independent sweep points across worker processes",
    )
    experiment.add_argument(
        "--backend",
        choices=["in-process", "local", "remote"],
        default=None,
        help="execution backend for the run (default: in-process with a throwaway pool per "
        "parallel dispatch). 'local' keeps one persistent process pool for the whole run; "
        "'remote' opens a work-stealing task queue that `python -m repro.worker` processes "
        "attach to (combine with --jobs to auto-spawn that many localhost workers). "
        "Results are bit-identical on every backend. Env equivalents: REPRO_BACKEND / "
        "REPRO_WORKERS (see ExecutionConfig.from_env)",
    )
    experiment.add_argument(
        "--workers-endpoint",
        metavar="HOST:PORT",
        default=None,
        help="with --backend remote: bind the worker task queue here (default 127.0.0.1 with "
        "an OS-assigned port); point external workers at it with "
        "`python -m repro.worker --endpoint HOST:PORT`",
    )
    experiment.add_argument(
        "--workers-authkey",
        metavar="KEY",
        default=None,
        help="with --backend remote: shared secret workers must present (required for a "
        "non-loopback --workers-endpoint; default: a random per-run key that only "
        "auto-spawned localhost workers know). External workers pass it via "
        "`python -m repro.worker --authkey KEY` or REPRO_WORKER_AUTHKEY",
    )
    experiment.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="override the experiment's default Monte-Carlo trial count",
    )
    experiment.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the experiment's default root random seed",
    )
    experiment.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="overrides",
        help="override one declared experiment parameter (repeatable); values are parsed as "
        "Python literals where possible, e.g. --set epsilon=0.3 --set 'sizes=(250, 500)'; "
        "run list-experiments to see each experiment's parameters",
    )
    experiment.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="write the run artifact (manifest + report payload) to this directory; "
        "reload it with repro.api.load_run",
    )
    experiment.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="memoize the run through the content-addressed run store rooted here: an "
        "identical semantic request (same experiment, parameters and batch flag — "
        "--jobs/--backend deliberately excluded) is served from the store as a cache "
        "hit; a miss is computed and persisted under its fingerprint. Env equivalent: "
        "REPRO_STORE",
    )
    experiment.add_argument(
        "--no-cache",
        action="store_true",
        help="with --store: skip the cache lookup, recompute, and refresh the stored "
        "artifact. Env equivalent: REPRO_CACHE=0",
    )

    subparsers.add_parser(
        "list-experiments", help="list the registered experiment drivers and their parameters"
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve experiments over HTTP: submit runs as async jobs, poll results, "
        "with every completed run memoized through the content-addressed store",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; bind 0.0.0.0 only behind a trusted proxy "
        "— the service has no authentication of its own)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8000,
        help="TCP port to bind (0 = OS-assigned ephemeral port, printed on startup; default 8000)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads executing submitted jobs (bounds concurrent simulations; default 2)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="root directory of the content-addressed run store backing the service; repeated "
        "parameter points are served from it as cache hits without running any simulation",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=None,
        metavar="N",
        help="bound on jobs waiting for a worker; submissions beyond it are shed with "
        "429 + Retry-After instead of queueing unboundedly (default: unbounded)",
    )
    serve.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the crash-recovery job journal (journal.jsonl beside the store); "
        "jobs in flight when the process dies are then lost instead of replayed on restart",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request access logging",
    )

    store = subparsers.add_parser(
        "store", help="administer a content-addressed run store (ls, show, verify, gc)"
    )
    store.add_argument(
        "action",
        choices=["ls", "show", "verify", "gc"],
        help="ls: list stored runs; show: print one run's manifest summary and report; "
        "verify: recompute and check every stored fingerprint; gc: sweep stale staging "
        "directories and corrupt artifacts, then rebuild the index",
    )
    store.add_argument(
        "fingerprint",
        nargs="?",
        default=None,
        help="a stored run's fingerprint (any unambiguous prefix); required for show, "
        "optional for verify (default: verify everything)",
    )
    store.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="root directory of the run store to administer",
    )
    return parser


def _run_broadcast(args: argparse.Namespace) -> int:
    if args.clock_free:
        result = run_clock_free_broadcast(n=args.n, epsilon=args.epsilon, seed=args.seed)
        summary = {
            "protocol": "clock-free broadcast",
            "success": result.success,
            "rounds": result.rounds,
            "overhead_rounds": result.overhead_rounds,
            "messages": result.messages_sent,
            "final_correct_fraction": result.final_correct_fraction,
        }
    else:
        result = solve_noisy_broadcast(n=args.n, epsilon=args.epsilon, seed=args.seed)
        summary = {
            "protocol": "noisy broadcast",
            "success": result.success,
            "rounds": result.rounds,
            "messages": result.messages_sent,
            "final_correct_fraction": result.final_correct_fraction,
            "stage1_bias": result.stage1.final_bias,
        }
    print(render_kv(summary))
    return 0 if result.success else 1


def _run_majority(args: argparse.Namespace) -> int:
    result = solve_noisy_majority_consensus(
        n=args.n,
        epsilon=args.epsilon,
        initial_set_size=args.set_size,
        majority_bias=args.bias,
        seed=args.seed,
    )
    print(
        render_kv(
            {
                "protocol": "noisy majority-consensus",
                "success": result.success,
                "rounds": result.rounds,
                "messages": result.messages_sent,
                "start_phase": result.start_phase,
                "final_correct_fraction": result.final_correct_fraction,
            }
        )
    )
    return 0 if result.success else 1


def _parse_overrides(
    raw_overrides: Sequence[str], parser: argparse.ArgumentParser
) -> Dict[str, Any]:
    """Parse repeated ``--set key=value`` flags into parameter overrides.

    Values are parsed as Python literals (numbers, tuples, lists, booleans,
    ``None``, quoted strings); anything that is not a literal stays a plain
    string.  Whether a key is a valid parameter of the chosen experiment is
    validated by :func:`repro.api.run_experiment` against the registry.
    """
    overrides: Dict[str, Any] = {}
    for raw in raw_overrides:
        key, separator, value = raw.partition("=")
        key = key.strip()
        if not separator or not key:
            parser.error(f"--set expects KEY=VALUE, got {raw!r}")
        try:
            overrides[key] = ast.literal_eval(value.strip())
        except (ValueError, SyntaxError):
            overrides[key] = value.strip()
    return overrides


def _run_experiment(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run one experiment through :func:`repro.api.run_experiment`."""
    backend_options = {}
    if args.workers_endpoint is not None:
        backend_options["endpoint"] = args.workers_endpoint
    if args.workers_authkey is not None:
        backend_options["authkey"] = args.workers_authkey
    if backend_options and args.backend != "remote":
        parser.error("--workers-endpoint/--workers-authkey only apply to --backend remote")
    backend_options = backend_options or None
    if args.no_cache and args.store is None:
        parser.error("--no-cache only applies together with --store")
    config = ExecutionConfig(
        jobs=args.jobs,
        batch=args.batch,
        trials=args.trials,
        base_seed=args.seed,
        backend=args.backend,
        backend_options=backend_options,
        store_path=args.store,
        cache=not args.no_cache,
    )
    overrides = _parse_overrides(args.overrides, parser)
    try:
        # Validate override names up front: run_experiment would reject them
        # too, but a reserved name like ``config`` must produce the same
        # "settable parameters" message instead of a keyword collision.
        get_spec(args.experiment_id).validate_overrides(overrides)
        artifact = run_experiment(args.experiment_id, config=config, **overrides)
    except ExperimentError as error:
        parser.error(str(error))
    for note in artifact.execution.get("notes", []):
        print(f"note: {note}", file=sys.stderr)
    if args.store is not None:
        print(
            f"store: cache {artifact.execution.get('cache', '?')} "
            f"(fingerprint {artifact.fingerprint})",
            file=sys.stderr,
        )
    print(artifact.report.render())
    if args.save is not None:
        destination = save_run(artifact, args.save)
        print(f"run artifact saved to {destination}", file=sys.stderr)
    return 0


def _run_store(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Administer a run store: ``ls`` / ``show`` / ``verify`` / ``gc``."""
    store = RunStore(args.store)
    try:
        if args.action == "ls":
            if args.fingerprint is not None:
                parser.error("store ls takes no fingerprint; use show to inspect one run")
            entries = store.entries()
            if not entries:
                print(f"store at {store.root}: empty")
                return 0
            rows = [
                {
                    "fingerprint": entry["fingerprint"][:12],
                    "spec": str(entry.get("spec_id", "?")),
                    "version": str(entry.get("version", "?")),
                    "wall_s": entry.get("wall_time_seconds"),
                    "indexed": "yes" if entry["indexed"] else "NO (run gc)",
                }
                for entry in entries
            ]
            print(render_table(rows, title=f"store at {store.root}"))
            return 0
        if args.action == "show":
            if args.fingerprint is None:
                parser.error("store show needs a fingerprint (any unambiguous prefix)")
            fingerprint = store.resolve_prefix(args.fingerprint)
            artifact = store.get(fingerprint)
            print(
                render_kv(
                    {
                        "fingerprint": fingerprint,
                        "spec_id": artifact.spec_id,
                        "version": artifact.version,
                        "wall_time_seconds": artifact.wall_time_seconds,
                        "path": str(store.artifact_dir(fingerprint)),
                    }
                )
            )
            print(artifact.report.render())
            return 0
        if args.action == "verify":
            fingerprint = (
                store.resolve_prefix(args.fingerprint) if args.fingerprint else None
            )
            report = store.verify(fingerprint)
            failures = 0
            for outcome in report:
                if outcome["ok"]:
                    print(f"ok      {outcome['fingerprint']}")
                else:
                    failures += 1
                    print(f"CORRUPT {outcome['fingerprint']}: {outcome['error']}")
            print(f"{len(report)} checked, {failures} corrupt")
            return 1 if failures else 0
        if args.action == "gc":
            if args.fingerprint is not None:
                parser.error("store gc takes no fingerprint; it sweeps the whole store")
            summary = store.gc()
            print(
                render_kv(
                    {
                        "removed_stale": len(summary["removed_stale"]),
                        "removed_corrupt": len(summary["removed_corrupt"]),
                        "kept": summary["kept"],
                    }
                )
            )
            for fingerprint in summary["removed_corrupt"]:
                print(f"removed corrupt artifact {fingerprint}", file=sys.stderr)
            return 0
    except ExperimentError as error:
        parser.error(str(error))
    parser.error(f"unknown store action {args.action!r}")
    return 2


def _list_experiments() -> int:
    """Print the registry: one line per experiment, parameters indented."""
    for experiment_id in experiment_ids():
        spec = get_spec(experiment_id)
        capabilities: List[str] = []
        if spec.supports_batch:
            capabilities.append("--batch")
        if spec.supports_runner or spec.supports_point_jobs:
            capabilities.append("--jobs")
        suffix = f"  [{' '.join(capabilities)}]" if capabilities else ""
        print(f"{experiment_id}: {spec.title}{suffix}")
        settable = ", ".join(
            f"{parameter.name}={parameter.default!r}" for parameter in spec.parameters
        )
        print(f"    parameters: {settable}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "broadcast":
        return _run_broadcast(args)
    if args.command == "majority":
        return _run_majority(args)
    if args.command == "experiment":
        return _run_experiment(args, parser)
    if args.command == "list-experiments":
        return _list_experiments()
    if args.command == "serve":
        # Imported here: the service layer (http.server, job queue) is only
        # paid for by the one subcommand that serves traffic.
        from .service import serve as run_service

        return run_service(
            args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            verbose=not args.quiet,
            max_queued=args.max_queued,
            journal=not args.no_journal,
        )
    if args.command == "store":
        return _run_store(args, parser)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
