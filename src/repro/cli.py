"""Command-line interface to the protocol runners and experiment drivers.

Installed as ``repro-flip``.  Three subcommands cover the common workflows:

* ``repro-flip broadcast --n 2000 --epsilon 0.2`` — run the paper's noisy
  broadcast protocol once and print the outcome;
* ``repro-flip majority --n 2000 --epsilon 0.2 --set-size 300 --bias 0.1`` —
  run the noisy majority-consensus protocol once;
* ``repro-flip experiment E1 --jobs 4`` — run one of the experiment drivers
  (the E1–E11 table in ``README.md``) with its default settings and print
  its report; ``--jobs`` runs the Monte-Carlo trials across worker
  processes and ``--batch`` uses the vectorised batch simulators for the
  batchable experiments (E1–E3 broadcast-shaped, E7's baseline-protocol
  family, E8 majority-consensus, E10's sampling grid).  ``--jobs`` composes
  with ``--batch``: independent sweep points then execute concurrently
  while each point stays vectorised (see :mod:`repro.exec`).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Optional, Sequence

from .analysis.tables import render_kv
from .core.broadcast import solve_noisy_broadcast
from .core.majority import solve_noisy_majority_consensus
from .core.synchronizer import run_clock_free_broadcast
from .exec import resolve_runner
from .experiments import DRIVERS

__all__ = ["build_parser", "main"]


def _batchable_experiment_ids() -> str:
    """Comma-separated ids of the drivers whose ``run`` accepts ``batch=``.

    Derived from the driver signatures (the same introspection
    ``_run_experiment`` dispatches on), so help and error text can never
    drift from what ``--batch`` actually supports.
    """
    return ", ".join(
        experiment_id
        for experiment_id in sorted(DRIVERS, key=lambda key: int(key[1:]))
        if "batch" in inspect.signature(DRIVERS[experiment_id].run).parameters
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-flip",
        description="Noisy broadcast / majority-consensus in the Flip model (PODC 2014 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    broadcast = subparsers.add_parser("broadcast", help="run the noisy broadcast protocol once")
    broadcast.add_argument("--n", type=int, default=1000, help="population size")
    broadcast.add_argument("--epsilon", type=float, default=0.2, help="noise margin (flip prob = 1/2 - epsilon)")
    broadcast.add_argument("--seed", type=int, default=0, help="root random seed")
    broadcast.add_argument(
        "--clock-free", action="store_true", help="use the Section-3 protocol without a global clock"
    )

    majority = subparsers.add_parser("majority", help="run the noisy majority-consensus protocol once")
    majority.add_argument("--n", type=int, default=1000)
    majority.add_argument("--epsilon", type=float, default=0.2)
    majority.add_argument("--seed", type=int, default=0)
    majority.add_argument("--set-size", type=int, default=200, help="size of the initial opinionated set A")
    majority.add_argument("--bias", type=float, default=0.1, help="majority-bias of the initial set")

    experiment = subparsers.add_parser("experiment", help="run an experiment driver (E1..E11)")
    experiment.add_argument("experiment_id", choices=sorted(DRIVERS, key=lambda key: int(key[1:])))
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run Monte-Carlo trials across N worker processes (0 = one per CPU, default: serial); "
        "results are identical to a serial run for the same seeds",
    )
    experiment.add_argument(
        "--batch",
        action="store_true",
        help="simulate all trials of each sweep point at once with the vectorised batch path "
        f"({_batchable_experiment_ids()}; deterministic per base seed, but drawn from a "
        "batch-level random stream instead of per-trial streams); combine with --jobs to "
        "additionally run independent sweep points across worker processes",
    )

    subparsers.add_parser("list-experiments", help="list available experiment drivers")
    return parser


def _run_broadcast(args: argparse.Namespace) -> int:
    if args.clock_free:
        result = run_clock_free_broadcast(n=args.n, epsilon=args.epsilon, seed=args.seed)
        summary = {
            "protocol": "clock-free broadcast",
            "success": result.success,
            "rounds": result.rounds,
            "overhead_rounds": result.overhead_rounds,
            "messages": result.messages_sent,
            "final_correct_fraction": result.final_correct_fraction,
        }
    else:
        result = solve_noisy_broadcast(n=args.n, epsilon=args.epsilon, seed=args.seed)
        summary = {
            "protocol": "noisy broadcast",
            "success": result.success,
            "rounds": result.rounds,
            "messages": result.messages_sent,
            "final_correct_fraction": result.final_correct_fraction,
            "stage1_bias": result.stage1.final_bias,
        }
    print(render_kv(summary))
    return 0 if result.success else 1


def _run_majority(args: argparse.Namespace) -> int:
    result = solve_noisy_majority_consensus(
        n=args.n,
        epsilon=args.epsilon,
        initial_set_size=args.set_size,
        majority_bias=args.bias,
        seed=args.seed,
    )
    print(
        render_kv(
            {
                "protocol": "noisy majority-consensus",
                "success": result.success,
                "rounds": result.rounds,
                "messages": result.messages_sent,
                "start_phase": result.start_phase,
                "final_correct_fraction": result.final_correct_fraction,
            }
        )
    )
    return 0 if result.success else 1


def _run_experiment(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run one experiment driver with the requested execution strategy."""
    driver = DRIVERS[args.experiment_id]
    accepted = inspect.signature(driver.run).parameters
    kwargs = {}
    if args.batch and "batch" not in accepted:
        parser.error(
            f"{args.experiment_id} has no vectorised batch path; --batch supports the "
            f"batchable experiments ({_batchable_experiment_ids()})"
        )
    if args.jobs is not None:
        if args.jobs < 0:
            parser.error(f"--jobs must be non-negative (0 = one worker per CPU), got {args.jobs}")
        if args.batch:
            # The batch path is vectorised within a sweep point; --jobs
            # composes with it by running independent points concurrently.
            if "point_jobs" in accepted:
                kwargs["point_jobs"] = args.jobs
            else:
                print(
                    f"note: {args.experiment_id} --batch vectorises its whole Monte-Carlo "
                    "in-process; --jobs has no effect",
                    file=sys.stderr,
                )
        elif "runner" not in accepted:
            print(
                f"note: {args.experiment_id} vectorises its Monte-Carlo in-process rather than "
                "running per-trial simulations; --jobs has no effect",
                file=sys.stderr,
            )
        else:
            kwargs["runner"] = resolve_runner(args.jobs)
    if args.batch:
        kwargs["batch"] = True
    report = driver.run(**kwargs)
    print(report.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "broadcast":
        return _run_broadcast(args)
    if args.command == "majority":
        return _run_majority(args)
    if args.command == "experiment":
        return _run_experiment(args, parser)
    if args.command == "list-experiments":
        for experiment_id in sorted(DRIVERS, key=lambda key: int(key[1:])):
            driver = DRIVERS[experiment_id]
            print(f"{experiment_id}: {driver.__doc__.strip().splitlines()[0]}")
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
