"""Stage I — spreading the information in synchronized layers (Section 2.1).

The rule of Stage I (quoted from the paper):

    Consider an activated agent ``a`` of level ``i``.  Agent ``a`` waits until
    phase ``i + 1`` starts before sending any message.  During phase ``i`` it
    collects all messages it heard in the phase, chooses one of them uniformly
    at random, and sets its initial opinion ``B0(a)`` to be the opinion it
    heard in that message.  The agent then sends its initial opinion in each
    round during phases ``i+1, ..., T+1``.

The executor below implements that rule vectorised over the whole
population.  The "choose one of the messages uniformly at random" step is
realised with per-agent reservoir sampling, which (a) needs O(1) memory per
agent and (b) makes the choice independent of the order in which messages
arrive — exactly the property Remark 2.1 asks for, and which Section 3 relies
on when the global clock is removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.metrics import PhaseRecord
from ..substrate.population import NO_OPINION
from .opinions import bias_from_counts, validate_opinion
from .parameters import StageOneParameters

__all__ = ["StageOnePhaseSummary", "StageOneResult", "ReceptionAccumulator", "execute_stage_one"]


@dataclass(frozen=True)
class StageOnePhaseSummary:
    """Per-phase observables matching the paper's notation.

    ``activated_total`` is the paper's ``X_i`` (agents activated by the end of
    phase ``i``), ``newly_activated`` is ``Y_i``, ``newly_correct`` is ``Z_i``
    and ``bias_of_new`` is ``eps_i`` with ``Z_i = (1/2 + eps_i) Y_i``.
    """

    phase: int
    rounds: int
    senders: int
    activated_total: int
    newly_activated: int
    newly_correct: int
    bias_of_new: float
    messages_sent: int


@dataclass(frozen=True)
class StageOneResult:
    """Outcome of a full Stage-I execution."""

    phases: Tuple[StageOnePhaseSummary, ...]
    rounds: int
    messages_sent: int
    all_activated: bool
    initially_correct: int
    initially_correct_fraction: float
    final_bias: float

    def phase(self, index: int) -> StageOnePhaseSummary:
        """Return the summary of phase ``index``."""
        for summary in self.phases:
            if summary.phase == index:
                return summary
        raise KeyError(f"no Stage-I phase {index} in this result")


class ReceptionAccumulator:
    """Per-agent reservoir of the messages heard during one Stage-I phase.

    For every agent the accumulator keeps (a) how many messages it heard this
    phase and (b) one uniformly random message among them, maintained online
    via reservoir sampling: the ``m``-th message heard replaces the current
    choice with probability ``1/m``.
    """

    def __init__(self, size: int) -> None:
        self._counts = np.zeros(size, dtype=np.int64)
        self._chosen = np.full(size, NO_OPINION, dtype=np.int8)

    def observe(
        self, recipients: np.ndarray, bits: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Record one round's accepted messages for ``recipients``."""
        if recipients.size == 0:
            return
        self._counts[recipients] += 1
        replace = rng.random(recipients.size) < 1.0 / self._counts[recipients]
        current = self._chosen[recipients]
        self._chosen[recipients] = np.where(replace, bits, current).astype(np.int8)

    def observe_positional(
        self, recipients: np.ndarray, bits: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Like :meth:`observe`, but with fixed per-round RNG consumption.

        Draws one uniform per *agent slot* (not per recipient) and indexes
        into that vector, so the stream's consumption never depends on who
        happened to receive — the fault layer's RNG-stability contract (see
        :mod:`repro.substrate.faults`).  Fault-model runs use this variant;
        the plain :meth:`observe` stays byte-identical for everything else.
        """
        draws = rng.random(self._counts.size)
        if recipients.size == 0:
            return
        self._counts[recipients] += 1
        replace = draws[recipients] < 1.0 / self._counts[recipients]
        current = self._chosen[recipients]
        self._chosen[recipients] = np.where(replace, bits, current).astype(np.int8)

    def heard_anything(self) -> np.ndarray:
        """Boolean mask of agents that heard at least one message this phase."""
        return self._counts > 0

    def chosen_bits(self, agents: np.ndarray) -> np.ndarray:
        """The uniformly random chosen message of each agent in ``agents``."""
        bits = self._chosen[agents]
        if bits.size and bits.min() < 0:
            raise SimulationError("requested chosen bit of an agent that heard nothing")
        return bits

    def message_counts(self) -> np.ndarray:
        """Copy of the per-agent message counts (diagnostics only)."""
        return self._counts.copy()

    def reset(self) -> None:
        """Clear the accumulator for the next phase."""
        self._counts.fill(0)
        self._chosen.fill(NO_OPINION)


def execute_stage_one(
    engine: SimulationEngine,
    parameters: StageOneParameters,
    correct_opinion: int,
    start_phase: int = 0,
) -> StageOneResult:
    """Run Stage I of the protocol on ``engine``.

    Parameters
    ----------
    engine:
        A freshly initialised simulation whose population already contains
        the initially opinionated agents: the source (broadcast, phase 0) or
        the seeded set ``A`` (majority-consensus, ``start_phase = i_A``).
    parameters:
        Stage-I round budget.
    correct_opinion:
        The opinion ``B`` (used only for measurement, never by agents).
    start_phase:
        First phase to execute (Corollary 2.18).

    Returns
    -------
    StageOneResult
        Per-phase summaries plus aggregate complexities.
    """
    correct_opinion = validate_opinion(correct_opinion)
    population = engine.population
    protocol_rng = engine.protocol_rng()
    accumulator = ReceptionAccumulator(population.size)

    if population.num_opinionated() == 0:
        raise SimulationError(
            "Stage I needs at least one initially opinionated agent (source or seeded set)"
        )

    summaries = []
    total_messages_before = engine.metrics.messages_sent
    start_round = engine.now

    for phase in range(start_phase, parameters.num_phases):
        phase_length = parameters.phase_length(phase)
        phase_start_round = engine.now
        messages_before = engine.metrics.messages_sent

        # Agents that speak during this phase: everyone already activated
        # *and* opinionated when the phase starts.  Newly contacted agents
        # stay silent ("breathe") until the next phase.
        sender_mask = population.activated & (population.opinions != NO_OPINION)
        senders = np.flatnonzero(sender_mask)
        sender_bits = population.opinions[senders].astype(np.int8)

        accumulator.reset()
        # Fault/topology runs use the positional reservoir so a crash cannot
        # shift other agents' protocol-stream draws; the default path is
        # byte-identical to the pre-fault code.
        resilient = engine.faults is not None or engine.topology is not None
        observe = accumulator.observe_positional if resilient else accumulator.observe
        for _ in range(phase_length):
            report = engine.gossip_round(senders, sender_bits, correct_opinion=correct_opinion)
            if resilient or report.recipients.size:
                dormant_mask = ~population.activated[report.recipients]
                dormant_recipients = report.recipients[dormant_mask]
                dormant_bits = report.bits[dormant_mask]
                observe(dormant_recipients, dormant_bits, protocol_rng)

        newly_heard = np.flatnonzero(accumulator.heard_anything() & ~population.activated)
        chosen_bits = accumulator.chosen_bits(newly_heard)
        population.activate(newly_heard, phase=phase, round_index=engine.now)
        population.set_opinions(newly_heard, chosen_bits)

        newly_correct = int(np.count_nonzero(chosen_bits == correct_opinion))
        bias_of_new = bias_from_counts(newly_correct, int(newly_heard.size) - newly_correct)
        messages_in_phase = engine.metrics.messages_sent - messages_before
        summary = StageOnePhaseSummary(
            phase=phase,
            rounds=phase_length,
            senders=int(senders.size),
            activated_total=population.num_activated(),
            newly_activated=int(newly_heard.size),
            newly_correct=newly_correct,
            bias_of_new=bias_of_new,
            messages_sent=messages_in_phase,
        )
        summaries.append(summary)
        engine.metrics.observe_phase(
            PhaseRecord(
                stage="stage1",
                phase=phase,
                start_round=phase_start_round,
                end_round=engine.now,
                activated_total=summary.activated_total,
                newly_activated=summary.newly_activated,
                bias=summary.bias_of_new,
                correct_fraction=population.correct_fraction(correct_opinion),
                messages_sent=summary.messages_sent,
            )
        )
        engine.trace.record(engine.now, "stage1_phase_end", phase=phase, activated=summary.activated_total)

    initially_correct = population.count_opinion(correct_opinion)
    opinionated = population.num_opinionated()
    wrong = opinionated - initially_correct
    return StageOneResult(
        phases=tuple(summaries),
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - total_messages_before,
        all_activated=population.num_activated() == population.size,
        initially_correct=initially_correct,
        initially_correct_fraction=initially_correct / population.size,
        final_bias=bias_from_counts(initially_correct, wrong),
    )
