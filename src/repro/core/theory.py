"""Closed-form theoretical predictions from the paper.

These functions express, as code, the quantitative statements of the paper:
the complexity bounds of Theorems 2.17/3.1, the lower bounds of Section 1.4,
the per-hop reliability decay of Section 1.6, and the majority-sampling
bounds of Lemma 2.11 / Claims 2.12-2.13.  The experiment drivers compare the
simulator's measurements against these predictions, and the unit tests check
the algebra (monotonicity, limiting cases) directly.
"""

from __future__ import annotations

import math

from ..errors import ParameterError
from ..substrate.noise import validate_epsilon

__all__ = [
    "broadcast_round_bound",
    "broadcast_message_bound",
    "lower_bound_rounds",
    "lower_bound_messages",
    "clock_free_round_bound",
    "two_party_channel_uses",
    "hop_bias",
    "hop_correct_probability",
    "expected_relay_depth",
    "sample_majority_success_lower_bound",
    "stage2_bias_recursion",
    "stage2_phases_needed",
    "exact_majority_success_probability",
    "stirling_central_binomial_lower_bound",
    "silent_wait_round_bound",
    "majority_consensus_min_set_size",
    "majority_consensus_min_bias",
]


def _check_n(n: int) -> int:
    if n < 2:
        raise ParameterError(f"n must be at least 2, got {n}")
    return int(n)


# ----------------------------------------------------------------------
# Upper bounds (Theorem 2.17, Theorem 3.1)
# ----------------------------------------------------------------------
def broadcast_round_bound(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Theorem 2.17's round complexity ``O(log n / eps^2)`` with an explicit constant."""
    n = _check_n(n)
    epsilon = validate_epsilon(epsilon)
    return constant * math.log(n) / (epsilon * epsilon)


def broadcast_message_bound(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Theorem 2.17's message complexity ``O(n log n / eps^2)``."""
    return n * broadcast_round_bound(n, epsilon, constant)


def clock_free_round_bound(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Theorem 3.1's round complexity ``O(log n / eps^2 + log^2 n)``."""
    n = _check_n(n)
    epsilon = validate_epsilon(epsilon)
    return constant * (math.log(n) / (epsilon * epsilon) + math.log(n) ** 2)


# ----------------------------------------------------------------------
# Lower bounds (Section 1.4)
# ----------------------------------------------------------------------
def two_party_channel_uses(epsilon: float, constant: float = 1.0) -> float:
    """Shannon's ``Theta(1/eps^2)`` channel uses for one reliable bit over a BSC."""
    epsilon = validate_epsilon(epsilon)
    return constant / (epsilon * epsilon)


def lower_bound_rounds(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Section 1.4's ``Omega(log n / eps^2)`` round lower bound."""
    return broadcast_round_bound(n, epsilon, constant)


def lower_bound_messages(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Section 1.4's ``Omega(n log n / eps^2)`` total-bit lower bound."""
    return broadcast_message_bound(n, epsilon, constant)


def silent_wait_round_bound(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Rounds needed when agents only listen to the source: ``Theta(n log n / eps^2)``.

    Section 1.4: without relaying, each agent must individually collect
    ``Theta(log n / eps^2)`` samples from the single source, which sends one
    message per round, giving ``Theta(n log n / eps^2)`` rounds overall.
    """
    return n * broadcast_round_bound(n, epsilon, constant)


def majority_consensus_min_set_size(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Corollary 2.18's requirement ``|A| = Omega(log n / eps^2)``."""
    return broadcast_round_bound(n, epsilon, constant)


def majority_consensus_min_bias(set_size: int, n: int, constant: float = 1.0) -> float:
    """Corollary 2.18's requirement on the majority-bias: ``Omega(sqrt(log n / |A|))``."""
    if set_size < 1:
        raise ParameterError("set_size must be positive")
    n = _check_n(n)
    return constant * math.sqrt(math.log(n) / set_size)


# ----------------------------------------------------------------------
# Per-hop reliability decay (Section 1.6)
# ----------------------------------------------------------------------
def hop_bias(epsilon: float, depth: int) -> float:
    """Bias of a message relayed over ``depth`` noisy hops.

    Section 1.6: a message following a path of ``c`` intermediate agents is
    correct with probability at most ``1/2 + (2 eps)^c`` — i.e. its bias is
    ``(2 eps)^c / 2`` in the notation ``1/2 + bias``... the paper states the
    probability bound directly; we return the *advantage* over 1/2, which is
    ``(2 eps)^depth / 2`` per the exact single-hop recursion
    ``advantage -> 2 eps * advantage`` starting from advantage ``eps``... To
    avoid ambiguity this function returns the exact advantage obtained by
    iterating ``a_{c} = 2 eps * a_{c-1}`` with ``a_0 = 1/2`` (a perfectly
    informed sender), which gives ``a_c = (2 eps)^c / 2 <= (2 eps)^c``.
    """
    epsilon = validate_epsilon(epsilon)
    if depth < 0:
        raise ParameterError("depth must be non-negative")
    return 0.5 * (2.0 * epsilon) ** depth


def hop_correct_probability(epsilon: float, depth: int) -> float:
    """Probability a message relayed over ``depth`` hops still carries ``B``."""
    return 0.5 + hop_bias(epsilon, depth)


def expected_relay_depth(n: int) -> float:
    """Typical relay-tree depth under immediate forwarding: ``Theta(log n)``.

    Used by the Section 1.6 discussion: with immediate forwarding the typical
    agent first hears the rumor over a path of roughly ``log2 n`` hops, so its
    first message is correct with probability only ``1/2 + (2 eps)^{log2 n}``.
    """
    return math.log2(_check_n(n))


# ----------------------------------------------------------------------
# Lemma 2.11 and its supporting claims
# ----------------------------------------------------------------------
def sample_majority_success_lower_bound(delta: float, cap: float = 1.0 / 100.0) -> float:
    """Lemma 2.11: majority of ``gamma`` noisy samples is correct w.p. ``>= min(1/2 + 4 delta, 1/2 + cap)``."""
    if delta < 0:
        raise ParameterError("delta must be non-negative")
    return 0.5 + min(4.0 * delta, cap)


def stage2_bias_recursion(delta: float, amplification: float = 1.7, cap: float = 1.0 / 800.0) -> float:
    """Lemma 2.14's one-phase bias map ``delta -> min(amplification * delta, cap)`` ... capped from above.

    The lemma guarantees the *new* bias is at least ``min(1.7 delta, 1/800)``;
    iterating this map gives the trajectory the analysis tracks.
    """
    if delta < 0:
        raise ParameterError("delta must be non-negative")
    return min(amplification * delta, max(cap, delta))


def stage2_phases_needed(initial_bias: float, target_bias: float = 1.0 / 800.0, amplification: float = 1.7) -> int:
    """Number of boosting phases to go from ``initial_bias`` to ``target_bias`` at rate ``amplification``."""
    if initial_bias <= 0:
        raise ParameterError("initial_bias must be positive")
    if target_bias <= initial_bias:
        return 0
    return int(math.ceil(math.log(target_bias / initial_bias) / math.log(amplification)))


def exact_majority_success_probability(gamma: int, per_sample_correct: float) -> float:
    """Exact probability that the majority of ``gamma`` i.i.d. samples is correct.

    Each sample is independently correct with probability
    ``per_sample_correct``; ties (possible only for even ``gamma``) count as
    correct with probability 1/2.  This is the quantity Lemma 2.11 lower
    bounds; experiments compare the Monte-Carlo estimate, this exact value
    and the lemma's bound.
    """
    if gamma < 1:
        raise ParameterError("gamma must be positive")
    if not 0.0 <= per_sample_correct <= 1.0:
        raise ParameterError("per_sample_correct must be a probability")
    p = per_sample_correct
    q = 1.0 - p
    # Sum the binomial pmf over outcomes with a strict correct majority,
    # adding half the tie mass for even gamma.  Computed in log space for
    # numerical stability at large gamma.
    total = 0.0
    half = gamma / 2.0
    for correct_count in range(gamma + 1):
        if correct_count < half:
            continue
        log_term = (
            math.lgamma(gamma + 1)
            - math.lgamma(correct_count + 1)
            - math.lgamma(gamma - correct_count + 1)
        )
        if p > 0:
            log_term += correct_count * math.log(p)
        elif correct_count > 0:
            continue
        if q > 0:
            log_term += (gamma - correct_count) * math.log(q)
        elif gamma - correct_count > 0:
            continue
        term = math.exp(log_term)
        if correct_count == half:
            term *= 0.5
        total += term
    return min(1.0, total)


def stirling_central_binomial_lower_bound(r: int) -> float:
    """Claim 2.12's bound: ``P(exactly r + i wrong among 2r+1 fair coins) > 1 / (10 sqrt(r))``.

    Returns the claimed lower bound ``1 / (10 sqrt(r))``; tests compare it to
    the exact binomial probability to confirm the claim's direction.
    """
    if r < 1:
        raise ParameterError("r must be positive")
    return 1.0 / (10.0 * math.sqrt(r))
