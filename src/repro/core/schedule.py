"""Explicit phase schedules for the two-stage protocol.

Section 2.1.2 of the paper defines Stage I's phases by explicit round
intervals (``phase 0 = [0, beta_s)``, ``phase i = [beta_s + (i-1) beta,
beta_s + i beta)``, ...) and Section 3 shifts each phase ``i`` by an extra
``i * D`` rounds to tolerate clock skew ``D``.  This module materialises
those intervals so that executors, tests and the Section-3 synchronizer all
share one source of truth about *when* each phase happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..errors import ParameterError, ScheduleError
from .parameters import StageOneParameters, StageTwoParameters

__all__ = ["PhaseInterval", "PhaseSchedule", "build_stage1_schedule", "build_stage2_schedule"]


@dataclass(frozen=True)
class PhaseInterval:
    """A half-open round interval ``[start, end)`` assigned to one phase."""

    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ScheduleError(f"phase {self.index} has non-positive length: [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of rounds in the phase."""
        return self.end - self.start

    def contains(self, round_index: int) -> bool:
        """True when ``round_index`` falls inside the phase."""
        return self.start <= round_index < self.end

    def shifted(self, offset: int) -> "PhaseInterval":
        """The same phase shifted by ``offset`` rounds."""
        return PhaseInterval(self.index, self.start + offset, self.end + offset)


@dataclass(frozen=True)
class PhaseSchedule:
    """An ordered sequence of non-overlapping :class:`PhaseInterval`.

    Synchronous schedules are contiguous (each phase starts where the
    previous one ended); dilated schedules (Section 3) leave guard gaps
    between phases.  Both are valid; overlapping or out-of-order phases are
    not.
    """

    stage: str
    phases: Sequence[PhaseInterval]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ScheduleError("a schedule must contain at least one phase")
        previous_end = self.phases[0].start
        for phase in self.phases:
            if phase.start < previous_end:
                raise ScheduleError(
                    f"{self.stage} schedule overlaps at phase {phase.index}: "
                    f"phase starts at {phase.start} before the previous one ends at {previous_end}"
                )
            previous_end = phase.end

    def __iter__(self) -> Iterator[PhaseInterval]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def start(self) -> int:
        """First round covered by the schedule."""
        return self.phases[0].start

    @property
    def end(self) -> int:
        """One past the last round covered by the schedule."""
        return self.phases[-1].end

    @property
    def total_rounds(self) -> int:
        """Total rounds covered."""
        return self.end - self.start

    def phase_at(self, round_index: int) -> PhaseInterval:
        """Return the phase containing ``round_index``."""
        for phase in self.phases:
            if phase.contains(round_index):
                return phase
        raise ScheduleError(f"round {round_index} is outside the {self.stage} schedule")

    def dilated(self, guard: int) -> "PhaseSchedule":
        """Insert ``guard`` idle rounds before each phase (Section 3.1's ``i*D`` shifts).

        Phase ``j`` (by position in this schedule) starts ``(j + 1) * guard``
        rounds later than in the original schedule, so consecutive phases are
        separated by a guard window long enough to absorb clock skew ``guard``.
        """
        if guard < 0:
            raise ParameterError("guard must be non-negative")
        if guard == 0:
            return self
        dilated: List[PhaseInterval] = []
        cursor = self.start
        for phase in self.phases:
            cursor += guard
            dilated.append(PhaseInterval(phase.index, cursor, cursor + phase.length))
            cursor += phase.length
        return PhaseSchedule(stage=self.stage, phases=tuple(dilated))


def build_stage1_schedule(
    parameters: StageOneParameters, start_round: int = 0, start_phase: int = 0
) -> PhaseSchedule:
    """Materialise Stage I's phase intervals.

    Parameters
    ----------
    parameters:
        Stage-I round budget.
    start_round:
        Global round at which the first scheduled phase begins.
    start_phase:
        First phase to include.  Corollary 2.18 starts majority-consensus
        instances at phase ``i_A > 0``; broadcast instances start at 0.
    """
    if not 0 <= start_phase < parameters.num_phases:
        raise ParameterError(
            f"start_phase {start_phase} out of range (stage has {parameters.num_phases} phases)"
        )
    phases: List[PhaseInterval] = []
    cursor = start_round
    for index in range(start_phase, parameters.num_phases):
        length = parameters.phase_length(index)
        phases.append(PhaseInterval(index=index, start=cursor, end=cursor + length))
        cursor += length
    return PhaseSchedule(stage="stage1", phases=tuple(phases))


def build_stage2_schedule(parameters: StageTwoParameters, start_round: int = 0) -> PhaseSchedule:
    """Materialise Stage II's phase intervals (phases are 1-based as in the paper)."""
    phases: List[PhaseInterval] = []
    cursor = start_round
    for index in range(1, parameters.num_phases + 1):
        length = parameters.phase_length(index)
        phases.append(PhaseInterval(index=index, start=cursor, end=cursor + length))
        cursor += length
    return PhaseSchedule(stage="stage2", phases=tuple(phases))
