"""The noisy broadcast protocol (Theorem 2.17).

This module glues the two stages together into the complete
"breathe before speaking" protocol for the fully-synchronous setting:

1. **Stage I** (:mod:`repro.core.stage1`) activates every agent and leaves
   the population with a bias of ``Omega(sqrt(log n / n))`` towards the
   source's opinion ``B``.
2. **Stage II** (:mod:`repro.core.stage2`) boosts that bias to 1 by repeated
   noisy majority votes.

The public entry points are :class:`NoisyBroadcastProtocol` (operates on an
existing :class:`~repro.substrate.engine.SimulationEngine`) and the
convenience function :func:`solve_noisy_broadcast` which builds the engine,
runs the protocol and returns a :class:`BroadcastResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from .opinions import validate_opinion
from .parameters import ProtocolParameters
from .stage1 import StageOneResult, execute_stage_one
from .stage2 import StageTwoResult, execute_stage_two

__all__ = ["BroadcastResult", "NoisyBroadcastProtocol", "solve_noisy_broadcast"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of a noisy-broadcast run.

    Attributes
    ----------
    success:
        True when *every* agent ended the run holding the correct opinion
        ``B`` (the paper's success criterion).
    correct_opinion:
        The opinion ``B`` held by the source.
    rounds / messages_sent:
        Complexity actually incurred, to be compared against
        ``O(log n / eps^2)`` and ``O(n log n / eps^2)``.
    final_correct_fraction:
        Fraction of agents holding ``B`` at the end.
    stage1 / stage2:
        Per-stage results with per-phase detail.
    """

    success: bool
    correct_opinion: int
    n: int
    epsilon: float
    rounds: int
    messages_sent: int
    final_correct_fraction: float
    stage1: StageOneResult
    stage2: StageTwoResult

    @property
    def bits_sent(self) -> int:
        """Total bits transmitted (each message is one bit)."""
        return self.messages_sent

    @property
    def messages_per_agent(self) -> float:
        """Average number of messages sent per agent."""
        return self.messages_sent / self.n


class NoisyBroadcastProtocol:
    """The paper's two-stage noisy broadcast algorithm (fully-synchronous)."""

    name = "breathe-before-speaking"

    def __init__(self, parameters: ProtocolParameters) -> None:
        self.parameters = parameters

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> BroadcastResult:
        """Execute the protocol on ``engine``.

        The engine must have a source agent; the source is given
        ``correct_opinion`` and everything else follows the paper.
        """
        correct_opinion = validate_opinion(correct_opinion)
        if engine.population.source is None:
            raise SimulationError("noisy broadcast requires a population with a source agent")
        if engine.n != self.parameters.n:
            raise SimulationError(
                f"engine has {engine.n} agents but parameters were built for {self.parameters.n}"
            )
        engine.population.set_source_opinion(correct_opinion)

        stage1 = execute_stage_one(engine, self.parameters.stage1, correct_opinion)
        stage2 = execute_stage_two(engine, self.parameters.stage2, correct_opinion)

        return BroadcastResult(
            success=engine.population.all_correct(correct_opinion),
            correct_opinion=correct_opinion,
            n=engine.n,
            epsilon=engine.epsilon,
            rounds=stage1.rounds + stage2.rounds,
            messages_sent=stage1.messages_sent + stage2.messages_sent,
            final_correct_fraction=stage2.final_correct_fraction,
            stage1=stage1,
            stage2=stage2,
        )


def solve_noisy_broadcast(
    n: int,
    epsilon: float,
    seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    record_time_series: bool = False,
    faults=None,
    topology=None,
    **calibration_overrides: float,
) -> BroadcastResult:
    """Build an engine and run the noisy broadcast protocol once.

    Parameters
    ----------
    n, epsilon, seed:
        Instance size, noise margin and root seed.
    correct_opinion:
        The source's opinion ``B``.
    parameters:
        Optional explicit :class:`ProtocolParameters`; when omitted the
        calibrated preset is used (``calibration_overrides`` are forwarded to
        :meth:`ProtocolParameters.calibrated`).
    record_time_series:
        Store per-round correct-fraction series in the engine metrics.
    faults, topology:
        Optional :data:`~repro.substrate.faults.FaultModel` and
        :class:`~repro.substrate.topology.ContactTopology` forwarded to
        :meth:`SimulationEngine.create`; the default (both ``None``) keeps
        the pre-fault code path byte for byte.

    Returns
    -------
    BroadcastResult
    """
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    engine = SimulationEngine.create(
        n=n,
        epsilon=epsilon,
        seed=seed,
        record_time_series=record_time_series,
        faults=faults,
        topology=topology,
    )
    return NoisyBroadcastProtocol(parameters).run(engine, correct_opinion=correct_opinion)
