"""Stage II — boosting the bias by repeated noisy majorities (Section 2.2).

The rule of Stage II (quoted from the paper):

    For each round in each phase ``i``, ``1 <= i <= k + 1``, each agent
    repeatedly sends out its current opinion.  [...]  At the end of each
    phase, a successful agent ``a`` (one that received at least ``m_i / 2``
    messages during the phase) selects uniformly at random a subset of
    exactly ``m_i / 2`` of its samples and updates its opinion to the
    majority opinion in that subset.  An unsuccessful agent does not change
    its opinion during the phase.

Implementation notes
--------------------
* Opinions only change at phase boundaries, so all messages an agent sends
  during a phase carry the *phase-start* opinion; the executor snapshots the
  opinion vector at the start of every phase.
* "Majority of a uniformly random subset of exactly ``h`` samples" depends on
  an agent's samples only through the counts (total, number of ones), so it
  is simulated exactly by drawing the number of ones in the subset from a
  hypergeometric distribution.  This is both faster and order-invariant,
  which is the property Remark 2.10 requires for the Section-3 argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..substrate.engine import SimulationEngine
from ..substrate.metrics import PhaseRecord
from ..substrate.population import NO_OPINION
from .opinions import validate_opinion
from .parameters import StageTwoParameters

__all__ = [
    "StageTwoPhaseSummary",
    "StageTwoResult",
    "SampleAccumulator",
    "majority_of_random_subset",
    "execute_stage_two",
]


@dataclass(frozen=True)
class StageTwoPhaseSummary:
    """Per-phase observables of Stage II.

    ``bias_before``/``bias_after`` are the population biases ``delta_i`` and
    ``delta_{i+1}`` the analysis of Lemma 2.14 tracks.
    """

    phase: int
    rounds: int
    successful_agents: int
    bias_before: float
    bias_after: float
    correct_fraction_after: float
    messages_sent: int


@dataclass(frozen=True)
class StageTwoResult:
    """Outcome of a full Stage-II execution."""

    phases: Tuple[StageTwoPhaseSummary, ...]
    rounds: int
    messages_sent: int
    final_correct_fraction: float
    final_bias: float
    consensus_reached: bool

    def phase(self, index: int) -> StageTwoPhaseSummary:
        """Return the summary of phase ``index`` (1-based, as in the paper)."""
        for summary in self.phases:
            if summary.phase == index:
                return summary
        raise KeyError(f"no Stage-II phase {index} in this result")


class SampleAccumulator:
    """Counts of samples (and of 1-samples) each agent collected in a phase."""

    def __init__(self, size: int) -> None:
        self._total = np.zeros(size, dtype=np.int64)
        self._ones = np.zeros(size, dtype=np.int64)

    def observe(self, recipients: np.ndarray, bits: np.ndarray) -> None:
        """Record one round's accepted messages."""
        if recipients.size == 0:
            return
        self._total[recipients] += 1
        self._ones[recipients] += bits.astype(np.int64)

    @property
    def totals(self) -> np.ndarray:
        """Per-agent number of samples collected this phase."""
        return self._total

    @property
    def ones(self) -> np.ndarray:
        """Per-agent number of 1-valued samples collected this phase."""
        return self._ones

    def reset(self) -> None:
        """Clear the accumulator for the next phase."""
        self._total.fill(0)
        self._ones.fill(0)


def majority_of_random_subset(
    totals: np.ndarray,
    ones: np.ndarray,
    subset_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Majority opinion of a uniformly random ``subset_size``-subset of each agent's samples.

    Parameters
    ----------
    totals, ones:
        Per-agent sample counts; every entry must satisfy
        ``totals >= subset_size`` and ``ones <= totals``.
    subset_size:
        The paper's ``m_i / 2``.
    rng:
        Randomness for the hypergeometric draws and for breaking ties (ties
        can only occur when ``subset_size`` is even).

    Returns
    -------
    numpy.ndarray
        One opinion (0 or 1) per agent.
    """
    totals = np.asarray(totals, dtype=np.int64)
    ones = np.asarray(ones, dtype=np.int64)
    if totals.size == 0:
        return np.empty(0, dtype=np.int8)
    zeros = totals - ones
    ones_in_subset = rng.hypergeometric(ones, zeros, subset_size)
    doubled = 2 * ones_in_subset
    result = np.where(doubled > subset_size, 1, 0).astype(np.int8)
    ties = doubled == subset_size
    if np.any(ties):
        result[ties] = rng.integers(0, 2, size=int(np.count_nonzero(ties))).astype(np.int8)
    return result


def execute_stage_two(
    engine: SimulationEngine,
    parameters: StageTwoParameters,
    correct_opinion: int,
) -> StageTwoResult:
    """Run Stage II of the protocol on ``engine``.

    The population is expected to be (mostly) opinionated already — Stage I
    ends with all agents activated w.h.p.  Agents without an opinion do not
    send but still collect samples and adopt the majority of a random subset
    if they turn out successful, which makes the executor usable as a
    standalone majority-consensus dynamic as well.
    """
    correct_opinion = validate_opinion(correct_opinion)
    population = engine.population
    protocol_rng = engine.protocol_rng()
    accumulator = SampleAccumulator(population.size)

    summaries = []
    messages_at_start = engine.metrics.messages_sent
    start_round = engine.now

    for phase in range(1, parameters.num_phases + 1):
        phase_length = parameters.phase_length(phase)
        subset_size = phase_length // 2
        phase_start_round = engine.now
        messages_before = engine.metrics.messages_sent
        bias_before = population.bias(correct_opinion)

        # Messages sent during the phase all carry the phase-start opinion.
        opinions_at_start = population.opinions.copy()
        senders = np.flatnonzero(opinions_at_start != NO_OPINION)
        sender_bits = opinions_at_start[senders].astype(np.int8)

        accumulator.reset()
        for _ in range(phase_length):
            report = engine.gossip_round(senders, sender_bits, correct_opinion=correct_opinion)
            accumulator.observe(report.recipients, report.bits)

        successful = np.flatnonzero(accumulator.totals >= subset_size)
        if successful.size:
            new_opinions = majority_of_random_subset(
                accumulator.totals[successful],
                accumulator.ones[successful],
                subset_size,
                protocol_rng,
            )
            population.set_opinions(successful, new_opinions)
            population.activate(successful, phase=phase, round_index=engine.now)

        bias_after = population.bias(correct_opinion)
        correct_fraction = population.correct_fraction(correct_opinion)
        messages_in_phase = engine.metrics.messages_sent - messages_before
        summary = StageTwoPhaseSummary(
            phase=phase,
            rounds=phase_length,
            successful_agents=int(successful.size),
            bias_before=bias_before,
            bias_after=bias_after,
            correct_fraction_after=correct_fraction,
            messages_sent=messages_in_phase,
        )
        summaries.append(summary)
        engine.metrics.observe_phase(
            PhaseRecord(
                stage="stage2",
                phase=phase,
                start_round=phase_start_round,
                end_round=engine.now,
                activated_total=population.num_activated(),
                newly_activated=0,
                bias=bias_after,
                correct_fraction=correct_fraction,
                messages_sent=messages_in_phase,
            )
        )
        engine.trace.record(engine.now, "stage2_phase_end", phase=phase, bias=bias_after)

    final_correct_fraction = population.correct_fraction(correct_opinion)
    return StageTwoResult(
        phases=tuple(summaries),
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - messages_at_start,
        final_correct_fraction=final_correct_fraction,
        final_bias=population.bias(correct_opinion),
        consensus_reached=population.all_correct(correct_opinion),
    )
