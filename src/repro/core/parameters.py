"""Protocol parameters for the paper's two-stage algorithm.

Section 2 of the paper fixes the algorithm's shape but leaves its constants
as "sufficiently large": Stage I uses phase lengths ``beta_s = s log n``,
``beta`` and ``beta_f = f log n`` with ``f > c1 beta > c2 s > c3 / eps^2``;
Stage II uses ``gamma = 2r + 1`` samples per boosting phase with
``r = ceil(2^22 / eps^2)`` and ``k + 1 = O(log n)`` phases.

For simulation we keep every *functional form* intact but expose the
constants, via two presets:

* :meth:`ProtocolParameters.paper` — the literal constants from the text
  (enormous; useful only to document and unit-test the formulas);
* :meth:`ProtocolParameters.calibrated` — small constants that preserve all
  dependencies on ``n`` and ``epsilon`` and succeed with overwhelming
  empirical frequency at laptop scale (see the calibration notes below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ParameterError
from ..substrate.noise import validate_epsilon

__all__ = [
    "StageOneParameters",
    "StageTwoParameters",
    "ProtocolParameters",
    "compute_num_intermediate_phases",
    "minimum_epsilon",
    "initial_bias_target",
]


def minimum_epsilon(n: int, eta: float = 0.05) -> float:
    """The paper's admissibility threshold ``epsilon > n**(-1/2 + eta)``."""
    if n < 2:
        raise ParameterError("n must be at least 2")
    if not 0 < eta < 0.5:
        raise ParameterError("eta must lie in (0, 1/2)")
    return float(n ** (-0.5 + eta))


def initial_bias_target(n: int) -> float:
    """The bias Stage I must deliver: ``Omega(sqrt(log n / n))`` (Lemma 2.3)."""
    if n < 2:
        raise ParameterError("n must be at least 2")
    return math.sqrt(math.log(n) / n)


def compute_num_intermediate_phases(n: int, beta_s: int, beta: int) -> int:
    """The paper's ``T = floor(log(n / (2 beta_s)) / log(beta + 1))``, clamped at 0.

    ``T`` is the number of intermediate Stage-I phases (phases ``1 .. T``);
    it satisfies ``beta_s (beta + 1)**T <= n / 2`` so that the dissemination
    tree never exhausts the dormant population prematurely.
    """
    if beta_s < 1 or beta < 1:
        raise ParameterError("beta_s and beta must be positive")
    ratio = n / (2.0 * beta_s)
    if ratio <= 1.0:
        return 0
    return max(0, int(math.floor(math.log(ratio) / math.log(beta + 1))))


@dataclass(frozen=True)
class StageOneParameters:
    """Round budget of Stage I (spreading).

    Attributes
    ----------
    beta_s:
        Length of phase 0 (only the source speaks); the paper's ``beta_s = s log n``.
    beta:
        Length of each intermediate phase ``1 .. T``.
    beta_f:
        Length of the final phase ``T + 1``; the paper's ``beta_f = f log n``.
    num_intermediate_phases:
        The paper's ``T``.
    """

    beta_s: int
    beta: int
    beta_f: int
    num_intermediate_phases: int

    def __post_init__(self) -> None:
        for name in ("beta_s", "beta", "beta_f"):
            if getattr(self, name) < 1:
                raise ParameterError(f"{name} must be a positive number of rounds")
        if self.num_intermediate_phases < 0:
            raise ParameterError("num_intermediate_phases must be non-negative")

    @property
    def num_phases(self) -> int:
        """Total number of Stage-I phases (phase 0, ``T`` intermediate, final)."""
        return self.num_intermediate_phases + 2

    def phase_length(self, phase: int) -> int:
        """Length in rounds of Stage-I phase ``phase``."""
        if phase < 0 or phase >= self.num_phases:
            raise ParameterError(
                f"phase {phase} out of range for Stage I with {self.num_phases} phases"
            )
        if phase == 0:
            return self.beta_s
        if phase == self.num_phases - 1:
            return self.beta_f
        return self.beta

    @property
    def total_rounds(self) -> int:
        """Total Stage-I rounds: ``beta_s + T beta + beta_f``."""
        return self.beta_s + self.num_intermediate_phases * self.beta + self.beta_f


@dataclass(frozen=True)
class StageTwoParameters:
    """Round budget of Stage II (boosting).

    Attributes
    ----------
    gamma:
        Number of samples used in each majority vote; the paper's
        ``gamma = 2r + 1`` (always odd so votes cannot tie).
    num_boost_phases:
        The paper's ``k``: number of bias-doubling phases.
    final_phase_rounds:
        Length of the last phase (``k + 1``), ``O(log n / eps^2)`` rounds.
    """

    gamma: int
    num_boost_phases: int
    final_phase_rounds: int

    def __post_init__(self) -> None:
        if self.gamma < 1 or self.gamma % 2 == 0:
            raise ParameterError("gamma must be a positive odd integer")
        if self.num_boost_phases < 0:
            raise ParameterError("num_boost_phases must be non-negative")
        if self.final_phase_rounds < 1:
            raise ParameterError("final_phase_rounds must be positive")

    @property
    def r(self) -> int:
        """The paper's ``r`` with ``gamma = 2r + 1``."""
        return (self.gamma - 1) // 2

    @property
    def boost_phase_rounds(self) -> int:
        """Rounds per boosting phase: the paper's ``m_i = 2 gamma``."""
        return 2 * self.gamma

    @property
    def num_phases(self) -> int:
        """Total Stage-II phases (``k`` boosting phases plus the final one)."""
        return self.num_boost_phases + 1

    def phase_length(self, phase: int) -> int:
        """Length in rounds of Stage-II phase ``phase`` (1-based as in the paper)."""
        if phase < 1 or phase > self.num_phases:
            raise ParameterError(
                f"phase {phase} out of range for Stage II with {self.num_phases} phases"
            )
        if phase <= self.num_boost_phases:
            return self.boost_phase_rounds
        return self.final_phase_rounds

    @property
    def total_rounds(self) -> int:
        """Total Stage-II rounds."""
        return self.num_boost_phases * self.boost_phase_rounds + self.final_phase_rounds


@dataclass(frozen=True)
class ProtocolParameters:
    """Complete parameterisation of the two-stage protocol for one instance."""

    n: int
    epsilon: float
    stage1: StageOneParameters
    stage2: StageTwoParameters

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ParameterError("the protocol needs at least 4 agents")
        validate_epsilon(self.epsilon)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        n: int,
        epsilon: float,
        *,
        s0: float = 2.0,
        b0: float = 3.0,
        f0: float = 2.0,
        r0: float = 1.0,
        g0: float = 2.0,
        extra_boost_phases: int = 2,
        beta_override: Optional[int] = None,
        enforce_epsilon_bound: bool = True,
    ) -> "ProtocolParameters":
        """Laptop-scale parameters preserving the paper's functional forms.

        Every quantity keeps its ``Theta(.)`` dependence on ``n`` and
        ``epsilon`` from Section 2; only the leading constants are reduced.

        Parameters
        ----------
        s0, b0, f0:
            Stage-I constants: ``beta_s = ceil(s0 ln n / eps^2)``,
            ``beta = ceil(b0 / eps^2)``, ``beta_f = ceil(f0 ln n / eps^2)``.
        r0, g0:
            Stage-II constants: ``r = ceil(r0 / eps^2)`` and final phase of
            ``ceil(g0 ln n / eps^2)`` rounds.
        extra_boost_phases:
            Safety margin added to ``k = ceil(log2(1 / delta_1))``.
        beta_override:
            Force a specific intermediate-phase length (used by experiments
            that want several intermediate layers at modest ``n``).
        enforce_epsilon_bound:
            Check the paper's requirement ``epsilon > n**(-1/2 + eta)``.
        """
        epsilon = validate_epsilon(epsilon)
        if enforce_epsilon_bound and epsilon <= minimum_epsilon(n):
            raise ParameterError(
                f"epsilon={epsilon} violates the paper's requirement "
                f"epsilon > n^(-1/2+eta) = {minimum_epsilon(n):.4g} for n={n}"
            )
        log_n = math.log(max(n, 2))
        inv_eps_sq = 1.0 / (epsilon * epsilon)

        beta_s = max(8, math.ceil(s0 * log_n * inv_eps_sq))
        beta = beta_override if beta_override is not None else max(2, math.ceil(b0 * inv_eps_sq))
        beta_f = max(beta_s, math.ceil(f0 * log_n * inv_eps_sq))
        num_intermediate = compute_num_intermediate_phases(n, beta_s, beta)
        stage1 = StageOneParameters(
            beta_s=beta_s,
            beta=beta,
            beta_f=beta_f,
            num_intermediate_phases=num_intermediate,
        )

        r = max(4, math.ceil(r0 * inv_eps_sq))
        gamma = 2 * r + 1
        delta_1 = initial_bias_target(n)
        k = max(1, math.ceil(math.log2(1.0 / delta_1))) + max(0, extra_boost_phases)
        final_rounds = max(2 * gamma, math.ceil(g0 * log_n * inv_eps_sq))
        stage2 = StageTwoParameters(
            gamma=gamma,
            num_boost_phases=k,
            final_phase_rounds=final_rounds,
        )
        return cls(n=n, epsilon=epsilon, stage1=stage1, stage2=stage2)

    @classmethod
    def paper(cls, n: int, epsilon: float) -> "ProtocolParameters":
        """The literal (asymptotically safe, astronomically large) constants.

        Stage II uses the paper's explicit ``r = ceil(2^22 / eps^2)``; Stage I
        constants are chosen to respect ``f > c1 beta > c2 s > c3 / eps^2``
        with generous factors.  This preset exists to document the formulas
        and unit-test their algebra; it is far too large to simulate.
        """
        epsilon = validate_epsilon(epsilon)
        log_n = math.log(max(n, 2))
        inv_eps_sq = 1.0 / (epsilon * epsilon)
        s = math.ceil(2**10 * inv_eps_sq)
        beta = math.ceil(2**12 * inv_eps_sq)
        f = math.ceil(2**14 * inv_eps_sq)
        beta_s = math.ceil(s * log_n)
        beta_f = math.ceil(f * log_n)
        stage1 = StageOneParameters(
            beta_s=beta_s,
            beta=beta,
            beta_f=beta_f,
            num_intermediate_phases=compute_num_intermediate_phases(n, beta_s, beta),
        )
        r = math.ceil(2**22 * inv_eps_sq)
        delta_1 = initial_bias_target(n)
        stage2 = StageTwoParameters(
            gamma=2 * r + 1,
            num_boost_phases=max(1, math.ceil(math.log2(1.0 / delta_1))),
            final_phase_rounds=math.ceil(2**10 * log_n * inv_eps_sq),
        )
        return cls(n=n, epsilon=epsilon, stage1=stage1, stage2=stage2)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        """Total rounds of Stage I plus Stage II."""
        return self.stage1.total_rounds + self.stage2.total_rounds

    @property
    def message_upper_bound(self) -> int:
        """Crude upper bound on total messages: every agent speaks every round."""
        return self.n * self.total_rounds

    def with_stage1(self, **changes: int) -> "ProtocolParameters":
        """Return a copy with some Stage-I fields replaced."""
        return replace(self, stage1=replace(self.stage1, **changes))

    def with_stage2(self, **changes: int) -> "ProtocolParameters":
        """Return a copy with some Stage-II fields replaced."""
        return replace(self, stage2=replace(self.stage2, **changes))

    def describe(self) -> dict:
        """Plain-dict description used by the CLI and experiment records."""
        return {
            "n": self.n,
            "epsilon": self.epsilon,
            "stage1": {
                "beta_s": self.stage1.beta_s,
                "beta": self.stage1.beta,
                "beta_f": self.stage1.beta_f,
                "T": self.stage1.num_intermediate_phases,
                "rounds": self.stage1.total_rounds,
            },
            "stage2": {
                "gamma": self.stage2.gamma,
                "k": self.stage2.num_boost_phases,
                "final_phase_rounds": self.stage2.final_phase_rounds,
                "rounds": self.stage2.total_rounds,
            },
            "total_rounds": self.total_rounds,
        }
