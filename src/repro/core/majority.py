"""The noisy majority-consensus protocol (Corollary 2.18).

The majority-consensus problem starts from a subset ``A`` of opinionated
agents whose majority-bias towards ``B`` is
``(A_B - A_notB) / (2 |A|)``; everyone else has no opinion.  Corollary 2.18
shows that whenever ``|A| = Omega(log n / eps^2)`` and the bias is
``Omega(sqrt(log n / |A|))``, the problem is solved by running the broadcast
algorithm starting from Stage-I phase

    ``i_A = log(|A| / log n) / (2 log(1 / eps))``

(the phase whose activated-set size matches ``|A|``), followed by Stage II.
This module provides instance generation, the start-phase computation, the
protocol wrapper and a one-call convenience function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError, SimulationError
from ..substrate.engine import SimulationEngine
from .opinions import bias_from_counts, counts_from_bias, opposite, validate_opinion
from .parameters import ProtocolParameters
from .stage1 import StageOneResult, execute_stage_one
from .stage2 import StageTwoResult, execute_stage_two

__all__ = [
    "MajorityInstance",
    "MajorityConsensusResult",
    "compute_start_phase",
    "NoisyMajorityConsensusProtocol",
    "solve_noisy_majority_consensus",
]


@dataclass(frozen=True)
class MajorityInstance:
    """An initial opinion assignment for the majority-consensus problem.

    Attributes
    ----------
    members:
        Indices of the initially opinionated set ``A``.
    opinions:
        Their opinions, aligned with ``members``.
    majority_opinion:
        The (ground-truth) majority opinion ``B``.
    """

    members: np.ndarray
    opinions: np.ndarray
    majority_opinion: int

    def __post_init__(self) -> None:
        if self.members.shape != self.opinions.shape:
            raise ParameterError("members and opinions must be aligned")
        validate_opinion(self.majority_opinion)

    @property
    def size(self) -> int:
        """``|A|``."""
        return int(self.members.size)

    @property
    def majority_bias(self) -> float:
        """The instance's majority-bias as defined in Section 1.3.1."""
        correct = int(np.count_nonzero(self.opinions == self.majority_opinion))
        return bias_from_counts(correct, self.size - correct)

    @classmethod
    def generate(
        cls,
        n: int,
        size: int,
        bias: float,
        majority_opinion: int,
        rng: np.random.Generator,
    ) -> "MajorityInstance":
        """Generate a random instance with ``size`` members and the given bias.

        Members are a uniformly random subset of the ``n`` agents; the number
        of correct members is the smallest count achieving at least ``bias``.
        """
        majority_opinion = validate_opinion(majority_opinion)
        if not 1 <= size <= n:
            raise ParameterError(f"initial set size must be in [1, n], got {size}")
        if bias < 0:
            raise ParameterError("majority bias must be non-negative")
        members = rng.choice(n, size=size, replace=False).astype(np.int64)
        correct_count, wrong_count = counts_from_bias(size, bias)
        opinions = np.full(size, opposite(majority_opinion), dtype=np.int8)
        opinions[:correct_count] = majority_opinion
        rng.shuffle(opinions)
        return cls(members=members, opinions=opinions, majority_opinion=majority_opinion)


@dataclass(frozen=True)
class MajorityConsensusResult:
    """Outcome of a noisy majority-consensus run."""

    success: bool
    majority_opinion: int
    n: int
    epsilon: float
    initial_set_size: int
    initial_bias: float
    start_phase: int
    rounds: int
    messages_sent: int
    final_correct_fraction: float
    stage1: Optional[StageOneResult]
    stage2: StageTwoResult


def compute_start_phase(parameters: ProtocolParameters, initial_set_size: int) -> int:
    """Corollary 2.18's ``i_A = log(|A| / log n) / (2 log(1/eps))``, clamped to the schedule.

    The returned phase is clamped to ``[1, T + 1]`` so that the initial set
    always plays the role of "the agents activated before phase ``i_A``": the
    corollary's formula can exceed the number of phases when ``|A|`` is large
    relative to the (calibrated) phase growth, in which case starting at the
    final spreading phase is the faithful choice — the remaining job is just
    to activate the rest of the population and boost.
    """
    if initial_set_size < 1:
        raise ParameterError("initial_set_size must be positive")
    n = parameters.n
    epsilon = parameters.epsilon
    log_n = math.log(max(n, 2))
    ratio = initial_set_size / log_n
    if ratio <= 1.0 or epsilon >= 0.5:
        phase = 1
    else:
        phase = int(round(math.log(ratio) / (2.0 * math.log(1.0 / epsilon))))
    last_phase = parameters.stage1.num_phases - 1
    return int(min(max(phase, 1), last_phase))


class NoisyMajorityConsensusProtocol:
    """The paper's majority-consensus algorithm: late-start Stage I, then Stage II."""

    name = "breathe-before-speaking-majority"

    def __init__(self, parameters: ProtocolParameters, start_phase: Optional[int] = None) -> None:
        self.parameters = parameters
        self.start_phase = start_phase

    def run(self, engine: SimulationEngine, instance: MajorityInstance) -> MajorityConsensusResult:
        """Execute the protocol on ``engine`` from the initial assignment ``instance``."""
        if engine.n != self.parameters.n:
            raise SimulationError(
                f"engine has {engine.n} agents but parameters were built for {self.parameters.n}"
            )
        correct_opinion = instance.majority_opinion
        start_phase = (
            self.start_phase
            if self.start_phase is not None
            else compute_start_phase(self.parameters, instance.size)
        )
        engine.population.seed_opinionated_set(
            instance.members, instance.opinions, phase=max(start_phase - 1, 0), round_index=0
        )

        stage1 = execute_stage_one(
            engine, self.parameters.stage1, correct_opinion, start_phase=start_phase
        )
        stage2 = execute_stage_two(engine, self.parameters.stage2, correct_opinion)

        return MajorityConsensusResult(
            success=engine.population.all_correct(correct_opinion),
            majority_opinion=correct_opinion,
            n=engine.n,
            epsilon=engine.epsilon,
            initial_set_size=instance.size,
            initial_bias=instance.majority_bias,
            start_phase=start_phase,
            rounds=stage1.rounds + stage2.rounds,
            messages_sent=stage1.messages_sent + stage2.messages_sent,
            final_correct_fraction=stage2.final_correct_fraction,
            stage1=stage1,
            stage2=stage2,
        )


def solve_noisy_majority_consensus(
    n: int,
    epsilon: float,
    initial_set_size: int,
    majority_bias: float,
    seed: int = 0,
    majority_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    **calibration_overrides: float,
) -> MajorityConsensusResult:
    """Build an engine, generate a random instance and solve it once.

    Parameters
    ----------
    n, epsilon, seed:
        Instance size, noise margin and root seed.
    initial_set_size, majority_bias, majority_opinion:
        The initial opinionated set ``A``: its size, its majority-bias towards
        ``majority_opinion``.
    parameters:
        Optional explicit protocol parameters (calibrated preset otherwise).
    """
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=None)
    instance = MajorityInstance.generate(
        n=n,
        size=initial_set_size,
        bias=majority_bias,
        majority_opinion=majority_opinion,
        rng=engine.random.stream("instance"),
    )
    return NoisyMajorityConsensusProtocol(parameters).run(engine, instance)
