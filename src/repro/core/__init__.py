"""The paper's primary contribution: the two-stage "breathe before speaking" protocol.

Public surface:

* parameters and schedules — :class:`ProtocolParameters`, phase schedules;
* Stage I / Stage II executors — :func:`execute_stage_one`,
  :func:`execute_stage_two`;
* the complete protocols — :class:`NoisyBroadcastProtocol`,
  :class:`NoisyMajorityConsensusProtocol`, and their one-call wrappers
  :func:`solve_noisy_broadcast` / :func:`solve_noisy_majority_consensus`;
* the Section-3 clock-free variants — :class:`ClockFreeBroadcastProtocol`,
  :func:`run_clock_free_broadcast`, :func:`run_with_bounded_skew`;
* closed-form theoretical predictions — :mod:`repro.core.theory`.
"""

from .broadcast import BroadcastResult, NoisyBroadcastProtocol, solve_noisy_broadcast
from .majority import (
    MajorityConsensusResult,
    MajorityInstance,
    NoisyMajorityConsensusProtocol,
    compute_start_phase,
    solve_noisy_majority_consensus,
)
from .opinions import (
    OPINIONS,
    bias_from_counts,
    bias_to_fraction,
    correct_probability_after_noise,
    counts_from_bias,
    fraction_to_bias,
    majority_from_counts,
    majority_opinion,
    opposite,
    validate_opinion,
)
from .parameters import (
    ProtocolParameters,
    StageOneParameters,
    StageTwoParameters,
    compute_num_intermediate_phases,
    initial_bias_target,
    minimum_epsilon,
)
from .schedule import PhaseInterval, PhaseSchedule, build_stage1_schedule, build_stage2_schedule
from .stage1 import ReceptionAccumulator, StageOnePhaseSummary, StageOneResult, execute_stage_one
from .stage2 import (
    SampleAccumulator,
    StageTwoPhaseSummary,
    StageTwoResult,
    execute_stage_two,
    majority_of_random_subset,
)
from .synchronizer import (
    ActivationPhaseResult,
    ClockFreeBroadcastProtocol,
    ClockFreeBroadcastResult,
    default_guard,
    execute_stage_one_windowed,
    execute_stage_two_windowed,
    run_activation_phase,
    run_clock_free_broadcast,
    run_with_bounded_skew,
)
from . import theory

__all__ = [
    "BroadcastResult",
    "NoisyBroadcastProtocol",
    "solve_noisy_broadcast",
    "MajorityConsensusResult",
    "MajorityInstance",
    "NoisyMajorityConsensusProtocol",
    "compute_start_phase",
    "solve_noisy_majority_consensus",
    "OPINIONS",
    "bias_from_counts",
    "bias_to_fraction",
    "correct_probability_after_noise",
    "counts_from_bias",
    "fraction_to_bias",
    "majority_from_counts",
    "majority_opinion",
    "opposite",
    "validate_opinion",
    "ProtocolParameters",
    "StageOneParameters",
    "StageTwoParameters",
    "compute_num_intermediate_phases",
    "initial_bias_target",
    "minimum_epsilon",
    "PhaseInterval",
    "PhaseSchedule",
    "build_stage1_schedule",
    "build_stage2_schedule",
    "ReceptionAccumulator",
    "StageOnePhaseSummary",
    "StageOneResult",
    "execute_stage_one",
    "SampleAccumulator",
    "StageTwoPhaseSummary",
    "StageTwoResult",
    "execute_stage_two",
    "majority_of_random_subset",
    "ActivationPhaseResult",
    "ClockFreeBroadcastProtocol",
    "ClockFreeBroadcastResult",
    "default_guard",
    "execute_stage_one_windowed",
    "execute_stage_two_windowed",
    "run_activation_phase",
    "run_clock_free_broadcast",
    "run_with_bounded_skew",
    "theory",
]
