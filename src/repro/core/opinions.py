"""Opinion algebra used throughout the protocols.

The paper treats the two opinions ``{0, 1}`` as *abstract symmetric* values
(Section 1.3.4): agents may compare opinions and transmit them, but no agent
behaviour may depend on which concrete value is the correct one.  The helpers
in this module keep that symmetry explicit: everything is expressed in terms
of "the correct opinion ``B``" passed in by the experiment harness, never a
hard-coded 0 or 1.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import ParameterError

__all__ = [
    "OPINIONS",
    "validate_opinion",
    "opposite",
    "majority_opinion",
    "majority_from_counts",
    "bias_from_counts",
    "counts_from_bias",
    "correct_probability_after_noise",
    "fraction_to_bias",
    "bias_to_fraction",
]

#: The two admissible opinions of the Flip model.
OPINIONS: Tuple[int, int] = (0, 1)


def validate_opinion(opinion: int) -> int:
    """Return ``opinion`` as an ``int`` after checking it is 0 or 1."""
    if opinion not in OPINIONS:
        raise ParameterError(f"opinion must be 0 or 1, got {opinion!r}")
    return int(opinion)


def opposite(opinion: int) -> int:
    """The other opinion."""
    return 1 - validate_opinion(opinion)


def majority_opinion(
    bits: Iterable[int], rng: Optional[np.random.Generator] = None
) -> int:
    """Majority value of a collection of bits, ties broken uniformly at random.

    Parameters
    ----------
    bits:
        Iterable of values in ``{0, 1}``.
    rng:
        Generator used only to break ties; required if a tie is possible and
        reached (a deterministic 0 is returned for an empty input without an
        rng would be a bias, so an empty input raises instead).
    """
    array = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    if array.size == 0:
        raise ParameterError("cannot take the majority of zero samples")
    ones = int(np.count_nonzero(array))
    zeros = int(array.size - ones)
    return majority_from_counts(zeros, ones, rng=rng)


def majority_from_counts(
    zeros: int, ones: int, rng: Optional[np.random.Generator] = None
) -> int:
    """Majority opinion given counts of zeros and ones, random tie-break."""
    if zeros < 0 or ones < 0:
        raise ParameterError("counts must be non-negative")
    if zeros + ones == 0:
        raise ParameterError("cannot take the majority of zero samples")
    if ones > zeros:
        return 1
    if zeros > ones:
        return 0
    if rng is None:
        raise ParameterError("tie encountered but no rng provided for tie-breaking")
    return int(rng.integers(0, 2))


def bias_from_counts(correct: int, wrong: int) -> float:
    """Majority-bias as defined in Section 1.3.1: ``(correct - wrong) / (2 (correct + wrong))``."""
    if correct < 0 or wrong < 0:
        raise ParameterError("counts must be non-negative")
    total = correct + wrong
    if total == 0:
        return 0.0
    return (correct - wrong) / (2 * total)


def counts_from_bias(total: int, bias: float) -> Tuple[int, int]:
    """Split ``total`` agents into (correct, wrong) realising a bias close to ``bias``.

    The returned counts satisfy ``correct + wrong == total`` and produce the
    closest achievable bias not below the requested one (when feasible).
    """
    if total < 0:
        raise ParameterError("total must be non-negative")
    if not -0.5 <= bias <= 0.5:
        raise ParameterError(f"bias must lie in [-1/2, 1/2], got {bias!r}")
    correct = int(np.ceil(total * (0.5 + bias)))
    correct = min(max(correct, 0), total)
    return correct, total - correct


def fraction_to_bias(correct_fraction: float) -> float:
    """Convert a correct fraction ``1/2 + delta`` into the bias ``delta``."""
    return correct_fraction - 0.5


def bias_to_fraction(bias: float) -> float:
    """Convert a bias ``delta`` into the correct fraction ``1/2 + delta``."""
    return 0.5 + bias


def correct_probability_after_noise(bias: float, epsilon: float) -> float:
    """Probability that a noisy sample of a biased population is correct.

    This is the identity used repeatedly in the paper (e.g. Claim 2.8 and
    Lemma 2.11): sampling a population whose correct fraction is
    ``1/2 + bias`` through a channel that preserves a bit with probability
    ``1/2 + epsilon`` yields a correct bit with probability::

        (1/2 + bias)(1/2 + epsilon) + (1/2 - bias)(1/2 - epsilon) = 1/2 + 2 epsilon bias
    """
    return 0.5 + 2.0 * epsilon * bias
