"""Removing the global-clock assumption (Section 3 of the paper).

The fully-synchronous algorithm of Section 2 assumes every agent starts with
its clock at zero.  Section 3 replaces this with the standard synchronous
setting (an agent's clock starts when it is first activated) in two steps:

1. **Bounded skew** (Section 3.1): if all clocks are initialised within a
   window of ``D`` rounds, run each phase ``i`` shifted by an extra ``i * D``
   rounds of silence.  Because clocks differ by less than ``D``, every agent
   executes phase ``i`` inside a global window that is disjoint from the
   windows of other phases, and the execution maps bijectively onto a
   fully-synchronous one (the per-phase decisions are order-invariant, see
   Remarks 2.1 and 2.10).
2. **Unbounded skew** (Section 3.2): an initial *activation phase* — every
   informed agent broadcasts an arbitrary message for ``2 log n`` rounds, and
   each agent resets its clock ``4 log n`` rounds after it first heard a
   message — reduces the skew to ``D = 2 log n`` w.h.p., after which step 1
   applies.

The total overhead is an additive ``O(log^2 n)`` rounds (Theorem 3.1) while
the message complexity is unchanged, because the modification only inserts
silent rounds.

This module implements both steps.  The windowed executors re-implement the
per-round sending rule (an agent speaks only while its *own* clock is inside
the current phase's shifted interval) but reuse the same phase-end decision
rules as the synchronous executors, which is exactly what makes the paper's
equivalence argument go through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError, SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.metrics import PhaseRecord
from ..substrate.population import NO_OPINION
from .opinions import bias_from_counts, validate_opinion
from .parameters import ProtocolParameters
from .schedule import PhaseSchedule, build_stage1_schedule, build_stage2_schedule
from .stage1 import ReceptionAccumulator, StageOnePhaseSummary, StageOneResult
from .stage2 import SampleAccumulator, StageTwoPhaseSummary, StageTwoResult, majority_of_random_subset

__all__ = [
    "ActivationPhaseResult",
    "ClockFreeBroadcastResult",
    "default_guard",
    "run_activation_phase",
    "execute_stage_one_windowed",
    "execute_stage_two_windowed",
    "ClockFreeBroadcastProtocol",
    "run_clock_free_broadcast",
    "run_with_bounded_skew",
]


def default_guard(n: int) -> int:
    """The paper's skew bound after the activation phase: ``D = 2 log2 n`` rounds."""
    if n < 2:
        raise ParameterError("n must be at least 2")
    return 2 * int(math.ceil(math.log2(n)))


@dataclass(frozen=True)
class ActivationPhaseResult:
    """Outcome of the Section-3.2 activation phase.

    ``offsets[a]`` is the global round at which agent ``a``'s (reset) clock
    reads zero — i.e. the agent starts executing the main algorithm at global
    time ``offsets[a]``.
    """

    rounds: int
    messages_sent: int
    all_informed: bool
    skew: int
    offsets: np.ndarray


@dataclass(frozen=True)
class ClockFreeBroadcastResult:
    """Outcome of a broadcast run without the global-clock assumption."""

    success: bool
    correct_opinion: int
    n: int
    epsilon: float
    rounds: int
    messages_sent: int
    final_correct_fraction: float
    guard: int
    activation: Optional[ActivationPhaseResult]
    stage1: StageOneResult
    stage2: StageTwoResult

    @property
    def overhead_rounds(self) -> int:
        """Rounds spent beyond the two stages themselves (activation + guards)."""
        return self.rounds - (self.stage1.rounds + self.stage2.rounds)


# ----------------------------------------------------------------------
# Activation phase (Section 3.2)
# ----------------------------------------------------------------------
def run_activation_phase(
    engine: SimulationEngine,
    initially_informed: Optional[np.ndarray] = None,
    broadcast_duration: Optional[int] = None,
    reset_delay: Optional[int] = None,
) -> ActivationPhaseResult:
    """Run the clock-resetting activation phase and return per-agent offsets.

    Each informed agent broadcasts an arbitrary message (content is
    irrelevant, we send zeros) for ``broadcast_duration`` rounds after it was
    informed; an agent's clock is reset to zero ``reset_delay`` rounds after
    it first heard a message.  Defaults follow the paper: ``2 log n`` and
    ``4 log n``.

    The population's protocol state (activation flags, opinions) is *not*
    touched: being "informed" in the activation phase is separate
    bookkeeping, exactly as in the paper where activation-phase messages are
    arbitrary and carry no opinion.
    """
    n = engine.n
    if broadcast_duration is None:
        broadcast_duration = default_guard(n)
    if reset_delay is None:
        reset_delay = 2 * default_guard(n)
    if broadcast_duration < 1 or reset_delay < broadcast_duration:
        raise ParameterError("reset_delay must be at least broadcast_duration >= 1")

    if initially_informed is None:
        if engine.population.source is None:
            raise SimulationError("activation phase needs an initially informed agent")
        initially_informed = np.asarray([engine.population.source], dtype=np.int64)
    else:
        initially_informed = np.asarray(initially_informed, dtype=np.int64)
        if initially_informed.size == 0:
            raise SimulationError("activation phase needs at least one informed agent")

    start_round = engine.now
    messages_before = engine.metrics.messages_sent
    informed_at = np.full(n, -1, dtype=np.int64)
    informed_at[initially_informed] = start_round

    # The earliest clock reset happens ``reset_delay`` rounds after the start;
    # the paper argues all activation messages land before that, so we cap the
    # sending loop there.
    deadline = start_round + reset_delay
    budget = start_round + 4 * reset_delay + 32
    while engine.now < deadline:
        relative = engine.now - informed_at
        sender_mask = (informed_at >= 0) & (relative < broadcast_duration)
        senders = np.flatnonzero(sender_mask)
        if senders.size == 0:
            if np.all(informed_at >= 0):
                break
            # Nobody is broadcasting yet everyone is not informed; this can
            # only happen if the budget logic is wrong.
            raise SimulationError("activation phase stalled with dormant agents remaining")
        bits = np.zeros(senders.size, dtype=np.int8)
        report = engine.gossip_round(senders, bits)
        if report.recipients.size:
            fresh = report.recipients[informed_at[report.recipients] < 0]
            informed_at[fresh] = engine.now
        if engine.now >= budget:  # pragma: no cover - defensive
            break

    all_informed = bool(np.all(informed_at >= 0))
    # Agents that (very unlikely) were never informed behave like the latest
    # informed agent; this keeps the simulation total and is recorded via
    # ``all_informed`` so experiments can discard such trials.
    latest = int(informed_at.max()) if all_informed else int(max(informed_at.max(), start_round))
    informed_at = np.where(informed_at < 0, latest, informed_at)
    offsets = informed_at + reset_delay
    skew = int(offsets.max() - offsets.min())
    return ActivationPhaseResult(
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - messages_before,
        all_informed=all_informed,
        skew=skew,
        offsets=offsets,
    )


# ----------------------------------------------------------------------
# Windowed (local-clock) stage executors
# ----------------------------------------------------------------------
def _idle_until(engine: SimulationEngine, target_round: int) -> None:
    while engine.now < target_round:
        engine.idle_round()


def execute_stage_one_windowed(
    engine: SimulationEngine,
    parameters,
    correct_opinion: int,
    offsets: np.ndarray,
    guard: int,
    schedule: Optional[PhaseSchedule] = None,
    start_phase: int = 0,
) -> StageOneResult:
    """Stage I where each agent follows its own clock (offset by ``offsets``).

    ``schedule`` is the *local-time* phase schedule (already dilated by
    ``guard``); when omitted it is built from ``parameters`` and dilated.
    """
    correct_opinion = validate_opinion(correct_opinion)
    offsets = np.asarray(offsets, dtype=np.int64)
    population = engine.population
    if offsets.shape != (population.size,):
        raise ParameterError("offsets must contain one entry per agent")
    if guard < int(offsets.max() - offsets.min()):
        raise ParameterError("guard must be at least the clock skew")
    if schedule is None:
        schedule = build_stage1_schedule(parameters, start_phase=start_phase).dilated(guard)

    protocol_rng = engine.protocol_rng()
    accumulator = ReceptionAccumulator(population.size)
    min_offset = int(offsets.min())
    max_offset = int(offsets.max())

    # Sending eligibility by "level": initially opinionated agents behave as
    # level ``first_phase - 1`` (they may speak from the first scheduled
    # phase onwards); agents activated in phase i get level i.
    first_phase = schedule.phases[0].index
    levels = np.full(population.size, np.iinfo(np.int32).max, dtype=np.int64)
    initially_opinionated = population.activated & (population.opinions != NO_OPINION)
    levels[initially_opinionated] = first_phase - 1

    summaries = []
    messages_at_start = engine.metrics.messages_sent
    start_round = engine.now

    for phase in schedule:
        window_start = phase.start + min_offset
        window_end = phase.end + max_offset
        _idle_until(engine, window_start)
        phase_start_round = engine.now
        messages_before = engine.metrics.messages_sent
        accumulator.reset()

        sender_count_peak = 0
        while engine.now < window_end:
            local = engine.now - offsets
            in_window = (local >= phase.start) & (local < phase.end)
            sender_mask = in_window & (levels < phase.index) & (population.opinions != NO_OPINION)
            senders = np.flatnonzero(sender_mask)
            sender_count_peak = max(sender_count_peak, int(senders.size))
            if senders.size == 0:
                engine.idle_round()
                continue
            bits = population.opinions[senders].astype(np.int8)
            report = engine.gossip_round(senders, bits, correct_opinion=correct_opinion)
            if report.recipients.size:
                dormant_mask = ~population.activated[report.recipients]
                accumulator.observe(
                    report.recipients[dormant_mask], report.bits[dormant_mask], protocol_rng
                )

        newly_heard = np.flatnonzero(accumulator.heard_anything() & ~population.activated)
        chosen_bits = accumulator.chosen_bits(newly_heard)
        population.activate(newly_heard, phase=phase.index, round_index=engine.now)
        population.set_opinions(newly_heard, chosen_bits)
        levels[newly_heard] = phase.index

        newly_correct = int(np.count_nonzero(chosen_bits == correct_opinion))
        summary = StageOnePhaseSummary(
            phase=phase.index,
            rounds=engine.now - phase_start_round,
            senders=sender_count_peak,
            activated_total=population.num_activated(),
            newly_activated=int(newly_heard.size),
            newly_correct=newly_correct,
            bias_of_new=bias_from_counts(newly_correct, int(newly_heard.size) - newly_correct),
            messages_sent=engine.metrics.messages_sent - messages_before,
        )
        summaries.append(summary)
        engine.metrics.observe_phase(
            PhaseRecord(
                stage="stage1",
                phase=phase.index,
                start_round=phase_start_round,
                end_round=engine.now,
                activated_total=summary.activated_total,
                newly_activated=summary.newly_activated,
                bias=summary.bias_of_new,
                correct_fraction=population.correct_fraction(correct_opinion),
                messages_sent=summary.messages_sent,
            )
        )

    initially_correct = population.count_opinion(correct_opinion)
    opinionated = population.num_opinionated()
    return StageOneResult(
        phases=tuple(summaries),
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - messages_at_start,
        all_activated=population.num_activated() == population.size,
        initially_correct=initially_correct,
        initially_correct_fraction=initially_correct / population.size,
        final_bias=bias_from_counts(initially_correct, opinionated - initially_correct),
    )


def execute_stage_two_windowed(
    engine: SimulationEngine,
    parameters,
    correct_opinion: int,
    offsets: np.ndarray,
    guard: int,
    schedule: Optional[PhaseSchedule] = None,
    local_start_round: int = 0,
) -> StageTwoResult:
    """Stage II where each agent follows its own clock (offset by ``offsets``)."""
    correct_opinion = validate_opinion(correct_opinion)
    offsets = np.asarray(offsets, dtype=np.int64)
    population = engine.population
    if offsets.shape != (population.size,):
        raise ParameterError("offsets must contain one entry per agent")
    if guard < int(offsets.max() - offsets.min()):
        raise ParameterError("guard must be at least the clock skew")
    if schedule is None:
        schedule = build_stage2_schedule(parameters, start_round=local_start_round).dilated(guard)

    protocol_rng = engine.protocol_rng()
    accumulator = SampleAccumulator(population.size)
    min_offset = int(offsets.min())
    max_offset = int(offsets.max())

    summaries = []
    messages_at_start = engine.metrics.messages_sent
    start_round = engine.now

    for phase in schedule:
        subset_size = phase.length // 2
        window_start = phase.start + min_offset
        window_end = phase.end + max_offset
        _idle_until(engine, window_start)
        phase_start_round = engine.now
        messages_before = engine.metrics.messages_sent
        bias_before = population.bias(correct_opinion)

        opinions_at_start = population.opinions.copy()
        accumulator.reset()
        while engine.now < window_end:
            local = engine.now - offsets
            in_window = (local >= phase.start) & (local < phase.end)
            sender_mask = in_window & (opinions_at_start != NO_OPINION)
            senders = np.flatnonzero(sender_mask)
            if senders.size == 0:
                engine.idle_round()
                continue
            bits = opinions_at_start[senders].astype(np.int8)
            report = engine.gossip_round(senders, bits, correct_opinion=correct_opinion)
            accumulator.observe(report.recipients, report.bits)

        successful = np.flatnonzero(accumulator.totals >= subset_size)
        if successful.size:
            new_opinions = majority_of_random_subset(
                accumulator.totals[successful],
                accumulator.ones[successful],
                subset_size,
                protocol_rng,
            )
            population.set_opinions(successful, new_opinions)
            population.activate(successful, phase=phase.index, round_index=engine.now)

        summary = StageTwoPhaseSummary(
            phase=phase.index,
            rounds=engine.now - phase_start_round,
            successful_agents=int(successful.size),
            bias_before=bias_before,
            bias_after=population.bias(correct_opinion),
            correct_fraction_after=population.correct_fraction(correct_opinion),
            messages_sent=engine.metrics.messages_sent - messages_before,
        )
        summaries.append(summary)
        engine.metrics.observe_phase(
            PhaseRecord(
                stage="stage2",
                phase=phase.index,
                start_round=phase_start_round,
                end_round=engine.now,
                activated_total=population.num_activated(),
                newly_activated=0,
                bias=summary.bias_after,
                correct_fraction=summary.correct_fraction_after,
                messages_sent=summary.messages_sent,
            )
        )

    return StageTwoResult(
        phases=tuple(summaries),
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - messages_at_start,
        final_correct_fraction=population.correct_fraction(correct_opinion),
        final_bias=population.bias(correct_opinion),
        consensus_reached=population.all_correct(correct_opinion),
    )


# ----------------------------------------------------------------------
# Full clock-free protocol
# ----------------------------------------------------------------------
class ClockFreeBroadcastProtocol:
    """Noisy broadcast without the global-clock assumption (Theorem 3.1)."""

    name = "breathe-before-speaking-clock-free"

    def __init__(self, parameters: ProtocolParameters, guard: Optional[int] = None) -> None:
        self.parameters = parameters
        self.guard = guard

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ClockFreeBroadcastResult:
        """Run the activation phase followed by both (guarded) stages."""
        correct_opinion = validate_opinion(correct_opinion)
        if engine.population.source is None:
            raise SimulationError("clock-free broadcast requires a source agent")
        engine.population.set_source_opinion(correct_opinion)
        start_round = engine.now
        messages_at_start = engine.metrics.messages_sent

        activation = run_activation_phase(engine)
        guard = self.guard if self.guard is not None else max(default_guard(engine.n), activation.skew)

        stage1_schedule = build_stage1_schedule(self.parameters.stage1).dilated(guard)
        stage2_schedule = build_stage2_schedule(
            self.parameters.stage2, start_round=stage1_schedule.end
        ).dilated(guard)

        stage1 = execute_stage_one_windowed(
            engine,
            self.parameters.stage1,
            correct_opinion,
            offsets=activation.offsets,
            guard=guard,
            schedule=stage1_schedule,
        )
        stage2 = execute_stage_two_windowed(
            engine,
            self.parameters.stage2,
            correct_opinion,
            offsets=activation.offsets,
            guard=guard,
            schedule=stage2_schedule,
        )
        return ClockFreeBroadcastResult(
            success=engine.population.all_correct(correct_opinion),
            correct_opinion=correct_opinion,
            n=engine.n,
            epsilon=engine.epsilon,
            rounds=engine.now - start_round,
            messages_sent=engine.metrics.messages_sent - messages_at_start,
            final_correct_fraction=engine.population.correct_fraction(correct_opinion),
            guard=guard,
            activation=activation,
            stage1=stage1,
            stage2=stage2,
        )


def run_clock_free_broadcast(
    n: int,
    epsilon: float,
    seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    guard: Optional[int] = None,
    **calibration_overrides: float,
) -> ClockFreeBroadcastResult:
    """Convenience wrapper: build an engine and run the clock-free protocol once."""
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    return ClockFreeBroadcastProtocol(parameters, guard=guard).run(engine, correct_opinion)


def run_with_bounded_skew(
    n: int,
    epsilon: float,
    max_skew: int,
    seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    **calibration_overrides: float,
) -> ClockFreeBroadcastResult:
    """Section 3.1 only: clocks start uniformly within ``[0, max_skew)`` rounds.

    No activation phase is run; this isolates the cost of the per-phase guard
    windows, which is what experiment E9 sweeps.
    """
    if max_skew < 1:
        raise ParameterError("max_skew must be at least 1")
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    engine.population.set_source_opinion(correct_opinion)
    offsets = engine.random.stream("clock-skew").integers(0, max_skew, size=n).astype(np.int64)

    start_round = engine.now
    messages_at_start = engine.metrics.messages_sent
    guard = max_skew
    stage1_schedule = build_stage1_schedule(parameters.stage1).dilated(guard)
    stage2_schedule = build_stage2_schedule(
        parameters.stage2, start_round=stage1_schedule.end
    ).dilated(guard)
    stage1 = execute_stage_one_windowed(
        engine, parameters.stage1, correct_opinion, offsets, guard, schedule=stage1_schedule
    )
    stage2 = execute_stage_two_windowed(
        engine, parameters.stage2, correct_opinion, offsets, guard, schedule=stage2_schedule
    )
    return ClockFreeBroadcastResult(
        success=engine.population.all_correct(correct_opinion),
        correct_opinion=correct_opinion,
        n=n,
        epsilon=epsilon,
        rounds=engine.now - start_round,
        messages_sent=engine.metrics.messages_sent - messages_at_start,
        final_correct_fraction=engine.population.correct_fraction(correct_opinion),
        guard=guard,
        activation=None,
        stage1=stage1,
        stage2=stage2,
    )
