"""``python -m repro.worker`` — attach to a remote execution backend and work.

One worker process serves one :class:`~repro.exec.backends.remote.RemoteWorkerBackend`
endpoint: it connects to the backend's queue server, then loops pulling task
chunks off the shared queue (work-stealing — an idle worker simply takes the
next chunk), executing them, and pushing ordered per-chunk results back.
Start as many as the host allows, on as many hosts as can reach the
endpoint (the shared secret comes from ``--authkey`` or the
``REPRO_WORKER_AUTHKEY`` environment variable — prefer the latter, which
keeps it out of process listings)::

    REPRO_WORKER_AUTHKEY=secret python -m repro.worker --endpoint 192.168.1.10:7777

Protocol notes (see :mod:`repro.exec.backends.dispatch` for the full spec):

* a ``hello`` is sent on attach and ``heartbeat`` messages flow from a side
  thread, so a worker busy inside a long chunk still proves liveness —
  the parent evicts workers whose heartbeat goes stale and requeues their
  chunks;
* every chunk is acknowledged before execution, so the parent can attribute
  in-flight work, and every chunk-scoped reply echoes the chunk message's
  dispatch generation verbatim, so a late reply (after a requeue) is
  discarded by the parent instead of corrupting a later dispatch;
* a ``stop`` sentinel is re-queued before the worker exits, so one sentinel
  eventually reaches every worker sharing the queue, and a vanished queue
  server (the parent shut down) is a clean exit, not a crash;
* a task raising an exception reports a ``task-error`` with the offset of
  the failing task inside the chunk (the parent turns that into an
  :class:`~repro.errors.ExperimentError` naming the task's index, sweep
  point and seed) — the worker itself survives and keeps stealing;
* tasks are pure functions of their parent-derived arguments, so a chunk
  that was requeued to (or duplicated on) another worker yields
  byte-identical results.
"""

from __future__ import annotations

import argparse
import os
import queue
import threading
from typing import Optional, Sequence

__all__ = ["build_parser", "run_worker", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the worker's argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="attach to a repro remote execution backend and execute task chunks",
    )
    parser.add_argument(
        "--endpoint",
        required=True,
        metavar="HOST:PORT",
        help="the backend's workers endpoint (printed by --backend remote runs)",
    )
    parser.add_argument(
        "--authkey",
        default=None,
        help="shared secret of the endpoint (default: the REPRO_WORKER_AUTHKEY "
        "environment variable, which keeps the key out of process listings)",
    )
    parser.add_argument(
        "--id",
        default=None,
        dest="worker_id",
        help="worker identifier used in heartbeats and error attribution (default: pid-based)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="period of the liveness heartbeat (default: %(default)s)",
    )
    parser.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N chunks (default: run until stopped)",
    )
    return parser


def run_worker(
    endpoint: str,
    authkey: Optional[str] = None,
    worker_id: Optional[str] = None,
    heartbeat_interval: float = 2.0,
    max_chunks: Optional[int] = None,
    poll: float = 0.2,
) -> int:
    """Serve one endpoint until a stop sentinel arrives; returns chunks executed."""
    # Imported here so `--help` works without the exec layer and so the
    # module stays importable in stripped-down worker containers.
    from .errors import ExperimentError
    from .exec.backends.base import run_task
    from .exec.backends.remote import AUTHKEY_ENV, connect_queues

    key = authkey or os.environ.get(AUTHKEY_ENV)
    if not key:
        raise ExperimentError(
            "worker needs the backend's authkey: pass --authkey or set the "
            f"{AUTHKEY_ENV} environment variable (auto-spawned workers receive "
            "it automatically; for external fleets use the key the run was "
            "started with)"
        )
    identity = worker_id or f"worker-{os.getpid()}"
    task_queue, result_queue = connect_queues(endpoint, key)
    result_queue.put(("hello", identity))

    stop_heartbeat = threading.Event()

    def _heartbeat() -> None:
        while not stop_heartbeat.wait(heartbeat_interval):
            try:
                result_queue.put(("heartbeat", identity))
            except Exception:  # connection gone: the main loop will exit too
                return

    beat = threading.Thread(target=_heartbeat, name="repro-worker-heartbeat", daemon=True)
    beat.start()

    executed = 0
    try:
        while max_chunks is None or executed < max_chunks:
            try:
                message = task_queue.get(timeout=poll)
            except queue.Empty:
                continue
            if message[0] == "stop":
                # Re-queue the sentinel so sibling workers on the same
                # queue shut down too (the parent enqueues one per known
                # worker, but workers it never heard from share this one).
                try:
                    task_queue.put(("stop",))
                except Exception:
                    pass
                break
            _, generation, chunk_id, tasks = message
            result_queue.put(("ack", generation, chunk_id, identity))
            values = []
            failed = False
            for offset, task in enumerate(tasks):
                try:
                    values.append(run_task(task))
                except Exception as error:
                    result_queue.put(
                        (
                            "task-error",
                            generation,
                            chunk_id,
                            identity,
                            offset,
                            f"{type(error).__name__}: {error}",
                        )
                    )
                    failed = True
                    break
            if not failed:
                result_queue.put(("done", generation, chunk_id, identity, values))
            executed += 1
    except (EOFError, ConnectionError):
        # The queue server went away (parent shut down mid-poll): exit
        # cleanly rather than crash with a proxy traceback.
        pass
    finally:
        stop_heartbeat.set()
    return executed


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    run_worker(
        endpoint=args.endpoint,
        authkey=args.authkey,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        max_chunks=args.max_chunks,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
