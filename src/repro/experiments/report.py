"""Common report structure shared by all experiment drivers.

Each driver in :mod:`repro.experiments` reproduces one quantitative claim of
the paper (see the E1–E11 table in README.md) and returns an :class:`ExperimentReport`:
the claim being tested, the measured rows, and free-form notes.  Benchmarks
print ``report.render()`` so that running the benchmark suite regenerates
every "table" of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from ..analysis.tables import render_table
from ..errors import ExperimentError

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """The output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Identifier from the README.md experiment index (e.g. ``"E1"``).
    title:
        Human-readable one-line description.
    claim:
        The paper statement being reproduced (theorem / claim / section).
    rows:
        Measured table rows (list of dicts, one per configuration).
    notes:
        Free-form remarks (calibration caveats, fits, pass/fail summary).
    config:
        The driver configuration that produced the rows (trial counts, sizes).
    """

    experiment_id: str
    title: str
    claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one table row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form note."""
        self.notes.append(note)

    def columns(self) -> Sequence[str]:
        """Column order inferred from the first row."""
        if not self.rows:
            raise ExperimentError(f"experiment {self.experiment_id} produced no rows")
        return list(self.rows[0].keys())

    def row_values(self, column: str) -> List[Any]:
        """All values of one column across the rows."""
        return [row.get(column) for row in self.rows]

    def render(self, float_digits: int = 3) -> str:
        """Render the full report (title, claim, table, notes) as text."""
        if not self.rows:
            raise ExperimentError(f"experiment {self.experiment_id} produced no rows to render")
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"paper claim: {self.claim}",
            "",
            render_table(self.rows, float_digits=float_digits),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (used by the run-artifact store)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            claim=str(payload["claim"]),
            rows=[dict(row) for row in payload.get("rows", [])],
            notes=[str(note) for note in payload.get("notes", [])],
            config=dict(payload.get("config", {})),
        )
