"""Experiment E6 — Stage II bias boosting (Lemmas 2.11, 2.14, Corollary 2.15).

Stage II starts from a fully opinionated population whose bias towards the
correct opinion is only ``delta_1 = Omega(sqrt(log n / n))`` and must boost
that bias to 1.  Lemma 2.14 guarantees that each boosting phase multiplies a
small bias by at least 1.7 (until it reaches a constant), and the final long
phase finishes the job.

The driver seeds a population at exactly the starting bias Stage I would
deliver, runs Stage II alone, and reports the per-phase bias trajectory and
the per-phase amplification factors, alongside the final success rate.  With
``batch=True`` all trials execute simultaneously on ``(R, n)`` grids through
the instrumented stage kernel
(:func:`repro.exec.stage_batching.run_stage2_instrumented`), whose per-phase
replicate vectors carry exactly the ``delta_i`` trajectory the serial trial
reads off :class:`~repro.core.stage2.StageTwoPhaseSummary`.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Any, Optional, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.majority import MajorityInstance
from ..core.parameters import ProtocolParameters, StageTwoParameters, initial_bias_target
from ..core.stage2 import execute_stage_two
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]


def _stage2_trial(
    seed: int,
    _index: int,
    n: int,
    epsilon: float,
    initial_bias: float,
    parameters: StageTwoParameters,
) -> dict:
    """One Stage-II-only run from a seeded bias (module-level, hence picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=None)
    instance = MajorityInstance.generate(
        n=n, size=n, bias=initial_bias, majority_opinion=1, rng=engine.random.stream("seeding")
    )
    engine.population.seed_opinionated_set(instance.members, instance.opinions)
    stage2 = execute_stage_two(engine, parameters, correct_opinion=1)
    measurements = {
        "success": stage2.consensus_reached,
        "final_bias": stage2.final_bias,
        "final_fraction": stage2.final_correct_fraction,
    }
    for phase in stage2.phases:
        measurements[f"bias_after_{phase.phase}"] = phase.bias_after
        measurements[f"successful_{phase.phase}"] = phase.successful_agents
    return measurements


def _stage2_batch_result(
    name: str,
    n: int,
    epsilon: float,
    trials: int,
    base_seed: int,
    initial_bias: float,
    parameters: StageTwoParameters,
) -> "Any":
    """All trials at once on ``(R, n)`` grids, with the serial measurement keys."""
    from ..exec.batching import measurements_to_experiment_result
    from ..exec.stage_batching import run_stage2_instrumented
    from ..substrate.rng import derive_seed

    batch = run_stage2_instrumented(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        initial_bias=initial_bias,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    measurements = []
    for index in range(trials):
        trial = {
            "success": bool(batch.consensus_reached[index]),
            "final_bias": float(batch.final_bias[index]),
            "final_fraction": float(batch.final_correct_fraction[index]),
        }
        for phase in batch.phases:
            trial[f"bias_after_{phase.phase}"] = float(phase.bias_after[index])
            trial[f"successful_{phase.phase}"] = int(phase.successful_agents[index])
        measurements.append(trial)
    return measurements_to_experiment_result(name, measurements, base_seed=base_seed)


def run(
    n: int = 4000,
    epsilon: float = 0.2,
    initial_bias: Optional[float] = None,
    trials: int = 10,
    base_seed: int = 606,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E6 Stage-II-only measurement and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path); ``batch=True`` simulates all trials at
    once via the instrumented Stage-II batch kernel.
    """
    plan = resolve_run_options("E6", config=config, runner=runner, batch=batch)
    runner, batch = plan.runner, plan.batch
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    if initial_bias is None:
        initial_bias = 2.0 * initial_bias_target(n)
    parameters = ProtocolParameters.calibrated(n, epsilon)
    stage2_params = parameters.stage2

    if batch:
        result = _stage2_batch_result(
            "E6-stage2-boost", n, epsilon, trials, base_seed, initial_bias, stage2_params
        )
    else:
        result = run_trials(
            name="E6-stage2-boost",
            trial_fn=functools.partial(
                _stage2_trial,
                n=n,
                epsilon=epsilon,
                initial_bias=initial_bias,
                parameters=stage2_params,
            ),
            num_trials=trials,
            base_seed=base_seed,
            runner=runner,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "n": n,
            "epsilon": epsilon,
            "initial_bias": initial_bias,
            "gamma": stage2_params.gamma,
            "k": stage2_params.num_boost_phases,
            "trials": trials,
        },
    )

    previous_bias = initial_bias
    for phase_index in range(1, stage2_params.num_phases + 1):
        mean_bias = result.mean(f"bias_after_{phase_index}")
        amplification = mean_bias / previous_bias if previous_bias > 0 else math.inf
        report.add_row(
            phase=phase_index,
            is_final_phase=phase_index == stage2_params.num_phases,
            mean_bias_after=mean_bias,
            amplification_vs_previous=amplification,
            claimed_min_amplification=1.7 if phase_index <= stage2_params.num_boost_phases else None,
            mean_successful_agents=result.mean(f"successful_{phase_index}"),
        )
        previous_bias = mean_bias

    report.add_note(
        f"success rate (all agents correct at end of Stage II): {result.rate('success'):.0%}; "
        f"mean final correct fraction {result.mean('final_fraction'):.4f}"
    )
    report.add_note(
        "amplification naturally falls below 1.7 once the bias approaches its maximum of 1/2 — "
        "Lemma 2.14's guarantee is min(1.7*delta, 1/800) + saturation, which is what the trajectory shows."
    )
    return report
