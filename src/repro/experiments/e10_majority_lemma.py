"""Experiment E10 — the noisy-sampling majority lemma (Lemma 2.11).

Lemma 2.11: take ``gamma = 2r + 1`` noisy samples of a population whose bias
towards the correct opinion is ``delta``; then the majority of the samples is
correct with probability at least ``min(1/2 + 4 delta, 1/2 + 1/100)``.  The
proof works through an imaginary two-step process and the Stirling estimate
of Claim 2.12, and it is the engine behind Stage II's per-phase boosting.

The driver checks the lemma head-on, without the rest of the protocol:

* each sample is correct with probability ``1/2 + 2 eps delta`` (population
  bias filtered through the binary symmetric channel);
* Monte-Carlo and exact binomial evaluations of the majority's success
  probability are compared against the lemma's lower bound across the three
  regimes of the proof (small / medium / large ``delta``).

The paper's ``r = ceil(2^22 / eps^2)`` makes the constant 4 work for *every*
``delta``; the driver uses ``r = ceil(r0 / eps^2)`` with a configurable
``r0`` and records, per row, whether the (much smaller) calibrated sample
count already satisfies the bound.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.opinions import correct_probability_after_noise
from ..core.theory import exact_majority_success_probability, sample_majority_success_lower_bound
from ..substrate.rng import spawn_generator
from .report import ExperimentReport

__all__ = ["run"]

DEFAULT_DELTAS: Sequence[float] = (0.002, 0.005, 0.02, 0.05, 0.1, 0.25)


def run(
    epsilon: float = 0.2,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    r0: float = 8.0,
    monte_carlo_reps: int = 40_000,
    base_seed: int = 1010,
    batch: bool = False,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E10 sampling experiment and return its report.

    ``config`` carries the execution strategy (the ``batch`` keyword is the
    deprecation-shimmed legacy path).  ``batch=True`` draws the Monte-Carlo
    sample counts for *all* deltas as a single
    ``(len(deltas), monte_carlo_reps)`` binomial grid instead of one vector
    per delta — deterministic per ``base_seed`` and statistically equivalent
    to the per-delta loop, but drawn from a single batch-level stream (the
    same trade the ``--batch`` simulators make).
    """
    plan = resolve_run_options("E10", config=config, batch=batch)
    batch = plan.batch
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    deltas = list(deltas)  # iterated twice below; a one-shot iterable must not go empty
    r = int(math.ceil(r0 / (epsilon * epsilon)))
    gamma = 2 * r + 1
    rng = spawn_generator(base_seed, "e10", epsilon, gamma)

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "epsilon": epsilon,
            "r0": r0,
            "gamma": gamma,
            "monte_carlo_reps": monte_carlo_reps,
            "batch": batch,
        },
    )

    per_sample_probs = np.asarray(
        [correct_probability_after_noise(delta, epsilon) for delta in deltas]
    )
    if batch:
        # One draw for the whole sweep: row d holds delta_d's repetitions.
        batch_counts = rng.binomial(
            gamma, per_sample_probs[:, None], size=(len(per_sample_probs), monte_carlo_reps)
        )
        monte_carlo_by_delta = np.mean(2 * batch_counts > gamma, axis=1)

    for index, delta in enumerate(deltas):
        per_sample = float(per_sample_probs[index])
        if batch:
            monte_carlo = float(monte_carlo_by_delta[index])
        else:
            # Monte-Carlo: number of correct samples among gamma, repeated many times.
            correct_counts = rng.binomial(gamma, per_sample, size=monte_carlo_reps)
            monte_carlo = float(np.mean(2 * correct_counts > gamma))
        exact = exact_majority_success_probability(gamma, per_sample)
        bound = sample_majority_success_lower_bound(delta)
        if delta <= epsilon / (2**20):
            regime = "small"
        elif delta < 2**-12:
            regime = "medium"
        else:
            regime = "large"
        report.add_row(
            delta=delta,
            regime_in_paper_proof=regime,
            per_sample_correct_prob=per_sample,
            monte_carlo_majority_prob=monte_carlo,
            exact_majority_prob=exact,
            lemma_lower_bound=bound,
            bound_satisfied=exact >= bound - 1e-9,
        )

    report.add_note(
        f"gamma = 2*ceil({r0}/eps^2)+1 = {gamma}; the paper uses r = ceil(2^22/eps^2), which makes the "
        "constant-4 amplification hold for arbitrarily small delta.  With the calibrated gamma the bound "
        "holds across the sweep as soon as 2*eps*sqrt(2*gamma/pi) >= 4, which the chosen r0 satisfies."
    )
    report.add_note(
        "the paper's regime boundaries (delta <= eps/2^20, delta < 2^-12) all collapse into the 'large' "
        "regime at the delta values that are measurable by Monte-Carlo; the bound itself is what matters here."
    )
    return report
