"""Experiment E12 — fault injection: the paper's protocol versus an
``AlgorithmTwo``-style fault-tolerant comparator.

The paper's model has unreliable *channels* but perfectly reliable *agents*.
E12 asks what happens when the agents themselves misbehave: a fraction ``f``
of the population is fault-prone — crash-stop (each prone agent dies
independently per round) or Byzantine senders (prone agents transmit random
bits) — and we sweep the success rate of the two-stage protocol against
``f``.  As a yardstick the sweep also runs the classic phased
approximate-consensus algorithm
(:class:`~repro.protocols.fault_tolerant.PhasedApproximateConsensus`), which
is *designed* to tolerate ``f`` faulty servers: the contrast between an
algorithm with an explicit fault budget and one without is the point of the
experiment.

Fault-model conventions
-----------------------
* The source (agent 0) is immune for the paper's protocol — a crashed or
  Byzantine source makes broadcast vacuously unsolvable, which measures
  nothing.  The comparator has no distinguished agent, so its fault-prone
  set is drawn over everyone.
* ``fault_fraction = 0`` means *no injector at all* (``model=None``), so the
  zero column of the sweep is bit-identical to the pre-fault code path —
  the same ``FaultModel.NONE`` contract pinned over E1–E11 by
  ``tests/unit/test_fault_none_regression.py``.
* Success for the paper's protocol under crash faults counts *surviving*
  agents only (a dead agent has no opinion to be wrong about); the
  all-agents fraction is still reported for comparability with E1.

Both protocols have a batched ``(R, n)`` rule from day one
(:mod:`repro.exec.fault_batching`), differentially pinned against the serial
trials in ``tests/unit/exec/test_fault_batching.py``.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import ExperimentResult, run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import NoisyBroadcastProtocol
from ..core.parameters import ProtocolParameters
from ..errors import ExperimentError
from ..protocols.fault_tolerant import PhasedApproximateConsensus, declared_fault_tolerance
from ..substrate.engine import SimulationEngine
from ..substrate.faults import ByzantineSenders, CrashStop, FaultModel
from ..substrate.rng import spawn_generator
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run", "paper_fault_model", "comparator_fault_model"]

DEFAULT_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3)

#: Report/row order of the compared protocols (the paper's protocol first).
PROTOCOL_ORDER: Sequence[str] = (
    "breathe-before-speaking",
    "phased-approximate-consensus",
)

#: Fault kinds the driver understands (CLI ``--set fault_kind=...`` values).
FAULT_KINDS: Sequence[str] = ("crash", "byzantine")

#: Consensus comparator value range ``K`` (success means spread <= eps).
INITIAL_RANGE: float = 1.0


def paper_fault_model(
    fault_kind: str, fraction: float, crash_probability: float
) -> Optional[FaultModel]:
    """The fault model injected into the paper's protocol at ``fraction``.

    Agent 0 (the source) is immune — see the module docstring.  A zero
    fraction returns ``None`` so the sweep's baseline column runs the
    pristine code path.
    """
    if fault_kind not in FAULT_KINDS:
        raise ExperimentError(
            f"unknown fault_kind {fault_kind!r}; choose one of {', '.join(FAULT_KINDS)}"
        )
    if fraction < 0 or fraction > 1:
        raise ExperimentError(f"fault fraction must be in [0, 1], got {fraction}")
    if fraction == 0:
        return None
    if fault_kind == "crash":
        return CrashStop(fraction=fraction, crash_probability=crash_probability, immune=(0,))
    return ByzantineSenders(fraction=fraction, mode="random", immune=(0,))


def comparator_fault_model(
    fault_kind: str, fraction: float, crash_probability: float
) -> Optional[FaultModel]:
    """The fault model for the consensus comparator (no immune agents)."""
    model = paper_fault_model(fault_kind, fraction, crash_probability)
    if model is None:
        return None
    if isinstance(model, CrashStop):
        return CrashStop(fraction=fraction, crash_probability=crash_probability)
    return ByzantineSenders(fraction=fraction, mode="random")


def _paper_trial(
    seed: int, _index: int, n: int, epsilon: float, model: Optional[FaultModel]
) -> dict:
    """One fault-injected run of the paper's protocol (module-level, picklable).

    ``success``/``fraction`` count surviving (non-crashed) agents;
    ``final_correct_fraction`` keeps the all-agents notion of E1.
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, faults=model)
    parameters = ProtocolParameters.calibrated(n, epsilon)
    result = NoisyBroadcastProtocol(parameters).run(engine, correct_opinion=1)
    population = engine.population
    if engine.faults is not None:
        population.mark_crashed(engine.faults.crashed_serial())
    surviving = population.surviving_correct_fraction(1)
    return {
        "success": population.all_surviving_correct(1),
        "fraction": surviving,
        "surviving_fraction": surviving,
        "final_correct_fraction": result.final_correct_fraction,
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "crashed": population.num_crashed(),
    }


def _consensus_trial(
    seed: int, _index: int, n: int, model: Optional[FaultModel], agreement_eps: float
) -> dict:
    """One run of the phased-consensus comparator (module-level, picklable).

    Honest randomness and fault randomness come from separately spawned
    streams — the same dedicated-stream discipline as the gossip substrate.
    """
    algorithm = PhasedApproximateConsensus(
        initial_range=INITIAL_RANGE, agreement_eps=agreement_eps
    )
    outcome = algorithm.run(
        n,
        model,
        spawn_generator(seed, "consensus", n),
        spawn_generator(seed, "consensus-faults", n),
    )
    return {
        "success": outcome.success,
        "fraction": outcome.agreement_fraction,
        "rounds": outcome.phases,
        "spread": outcome.spread if math.isfinite(outcome.spread) else None,
        "num_faulty": outcome.num_faulty,
    }


def _task_name(protocol: str, fraction: float) -> str:
    """The ``run_trials`` experiment name of one (protocol, fraction) cell."""
    return f"E12-{protocol}-f={fraction}"


def _serial_tasks(
    n: int,
    epsilon: float,
    fraction: float,
    fault_kind: str,
    crash_probability: float,
    consensus_eps: float,
    trials: int,
    base_seed: int,
) -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """The per-protocol serial ``run_trials`` tasks of one fraction, in row order."""
    trial_fns: Dict[str, Callable[..., Any]] = {
        "breathe-before-speaking": functools.partial(
            _paper_trial,
            n=n,
            epsilon=epsilon,
            model=paper_fault_model(fault_kind, fraction, crash_probability),
        ),
        "phased-approximate-consensus": functools.partial(
            _consensus_trial,
            n=n,
            model=comparator_fault_model(fault_kind, fraction, crash_probability),
            agreement_eps=consensus_eps,
        ),
    }
    return [
        (
            protocol,
            run_trials,
            {
                "name": _task_name(protocol, fraction),
                "trial_fn": trial_fns[protocol],
                "num_trials": trials,
                "base_seed": base_seed,
            },
        )
        for protocol in PROTOCOL_ORDER
    ]


def _batch_tasks(
    n: int,
    epsilon: float,
    fraction: float,
    fault_kind: str,
    crash_probability: float,
    consensus_eps: float,
    trials: int,
    base_seed: int,
) -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """The per-protocol batched simulator tasks of one fraction, in row order.

    Per-cell batch seeds derive from the same experiment names the serial
    path uses, exactly as in the E7 driver.
    """
    from ..exec.fault_batching import run_consensus_comparator_batch, run_faulty_broadcast_batch
    from ..substrate.rng import derive_seed

    def batch_seed(protocol: str) -> int:
        return derive_seed(base_seed, _task_name(protocol, fraction), "batch")

    return [
        (
            "breathe-before-speaking",
            run_faulty_broadcast_batch,
            {
                "n": n,
                "epsilon": epsilon,
                "num_replicates": trials,
                "model": paper_fault_model(fault_kind, fraction, crash_probability),
                "base_seed": batch_seed("breathe-before-speaking"),
            },
        ),
        (
            "phased-approximate-consensus",
            run_consensus_comparator_batch,
            {
                "n": n,
                "num_replicates": trials,
                "model": comparator_fault_model(fault_kind, fraction, crash_probability),
                "base_seed": batch_seed("phased-approximate-consensus"),
                "initial_range": INITIAL_RANGE,
                "agreement_eps": consensus_eps,
            },
        ),
    ]


def _add_protocol_row(
    report: ExperimentReport,
    protocol: str,
    fraction: float,
    num_faulty: int,
    result: ExperimentResult,
) -> None:
    """Append one sweep row (the column set is shared across the protocols:
    ``mean_crashed`` applies to the paper's protocol, ``mean_spread`` to the
    comparator; the inapplicable one renders as ``-``)."""
    row: Dict[str, Any] = {
        "protocol": protocol,
        "fault_fraction": fraction,
        "num_faulty": num_faulty,
        "success_rate": result.rate("success"),
        "mean_fraction": result.mean("fraction"),
        "mean_rounds": result.mean("rounds"),
        "mean_crashed": None,
        "mean_spread": None,
    }
    if protocol == "breathe-before-speaking":
        row["mean_crashed"] = result.mean("crashed")
    else:
        row["mean_spread"] = result.mean_or("spread")
    report.add_row(**row)


def run(
    n: int = 600,
    epsilon: float = 0.25,
    fault_fractions: Sequence[float] = DEFAULT_FRACTIONS,
    fault_kind: str = "crash",
    crash_probability: float = 0.05,
    consensus_eps: float = 0.05,
    trials: int = 4,
    base_seed: int = 1212,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E12 fault sweep and return its report.

    Sweeps the fault fraction ``f`` over ``fault_fractions`` with faults of
    ``fault_kind`` (``"crash"`` or ``"byzantine"``) and, at every ``f``, runs
    both the paper's protocol (fault-injected) and the phased
    approximate-consensus comparator (configured to tolerate exactly the
    injected ``f``).  ``batch=True`` simulates all trials of each
    (fraction, protocol) cell at once via
    :func:`repro.exec.fault_batching.run_faulty_broadcast_batch` /
    :func:`repro.exec.fault_batching.run_consensus_comparator_batch`;
    ``point_jobs`` spreads the independent cells over worker processes on
    either path, results assembled in row order.
    """
    from ..exec import pool
    from ..exec.batching import batch_to_experiment_result

    plan = resolve_run_options(
        "E12", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed

    # Validate every fraction up front so a bad sweep fails before any work.
    for fraction in fault_fractions:
        paper_fault_model(fault_kind, fraction, crash_probability)

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "n": n,
            "epsilon": epsilon,
            "fault_fractions": list(fault_fractions),
            "fault_kind": fault_kind,
            "crash_probability": crash_probability,
            "consensus_eps": consensus_eps,
            "trials": trials,
            "batch": batch,
        },
    )

    make_tasks = _batch_tasks if batch else _serial_tasks
    tasks: List[Tuple[float, str, Callable[..., Any], Dict[str, Any]]] = [
        (fraction, protocol, fn, kwargs)
        for fraction in fault_fractions
        for protocol, fn, kwargs in make_tasks(
            n, epsilon, fraction, fault_kind, crash_probability, consensus_eps, trials, base_seed
        )
    ]

    raw_results = pool.run_point_tasks(
        [(fn, kwargs) for _, _, fn, kwargs in tasks],
        point_jobs,
        runner=None if batch else runner,
    )

    for (fraction, protocol, _, _), raw in zip(tasks, raw_results):
        result = (
            batch_to_experiment_result(_task_name(protocol, fraction), raw, base_seed=base_seed)
            if batch
            else raw
        )
        if protocol == "breathe-before-speaking":
            model = paper_fault_model(fault_kind, fraction, crash_probability)
        else:
            model = comparator_fault_model(fault_kind, fraction, crash_probability)
        _add_protocol_row(report, protocol, fraction, declared_fault_tolerance(model, n), result)

    report.add_note(
        f"fault_kind={fault_kind}: the paper's protocol has no fault budget (only the source, "
        "agent 0, is shielded), while the comparator's phase budget is recomputed at every f "
        "to tolerate exactly the injected number of faulty servers."
    )
    report.add_note(
        "f=0 rows run with no injector at all and are bit-identical to the pre-fault code "
        "path (the FaultModel.NONE contract); crash-fault success counts surviving agents only."
    )
    return report
