"""Experiment E7 — the paper's protocol versus naive baselines (Section 1.6).

Section 1.6 argues that the two obvious strategies fail in the Flip model:

* *immediate forwarding* spreads the rumor fast but over ``Theta(log n)``-hop
  relay chains, so the typical agent's opinion is correct with probability
  only ``1/2 + (2 eps)^{Theta(log n)}`` — essentially a coin flip;
* *adopt-the-last-bit* (noisy voter with a zealot source) cannot converge:
  the per-round update keeps the population bias at the noise floor.

The paper's protocol, in contrast, reaches full correct consensus in
``O(log n / eps^2)`` rounds.  The driver runs all of them (plus the
idealised direct-from-source reference) on identical instances and reports
final correct fraction, success rate, and rounds used.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..analysis.experiments import run_trials
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import expected_relay_depth, hop_correct_probability
from ..protocols.direct_source import DirectSourceReference
from ..protocols.naive_forward import ImmediateForwardingBroadcast
from ..protocols.noisy_voter import NoisyVoterBroadcast
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_EPSILONS: Sequence[float] = (0.1, 0.2)


def _paper_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the paper's protocol (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=seed)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
    }


def _forwarding_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the immediate-forwarding baseline (module-level, picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = ImmediateForwardingBroadcast().run(engine, correct_opinion=1)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
    }


def _voter_trial(seed: int, _index: int, n: int, epsilon: float, voter_rounds: int) -> dict:
    """One run of the noisy-voter baseline (module-level, hence picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = NoisyVoterBroadcast(max_rounds=voter_rounds).run(engine, correct_opinion=1)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
    }


def _direct_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the idealised direct-from-source reference (module-level, picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = DirectSourceReference().run(engine, correct_opinion=1)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.extra["first_all_correct_round"] or result.rounds,
    }


def run(
    n: int = 2000,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 4,
    voter_rounds: int = 600,
    base_seed: int = 707,
    runner: Optional["TrialRunner"] = None,
) -> ExperimentReport:
    """Run the E7 protocol comparison and return its report."""
    report = ExperimentReport(
        experiment_id="E7",
        title="Noisy broadcast: the paper's protocol versus naive strategies",
        claim=(
            "Section 1.6: immediate forwarding leaves the population near a coin flip "
            "(1/2 + (2 eps)^Theta(log n)); adopt-the-last-bit voter dynamics do not converge; "
            "the paper's protocol reaches full correct consensus"
        ),
        config={"n": n, "epsilons": list(epsilons), "trials": trials, "voter_rounds": voter_rounds},
    )

    for epsilon in epsilons:
        protocols: Dict[str, object] = {
            "breathe-before-speaking": functools.partial(_paper_trial, n=n, epsilon=epsilon),
            "immediate-forwarding": functools.partial(_forwarding_trial, n=n, epsilon=epsilon),
            "noisy-voter": functools.partial(
                _voter_trial, n=n, epsilon=epsilon, voter_rounds=voter_rounds
            ),
            "direct-source-reference": functools.partial(_direct_trial, n=n, epsilon=epsilon),
        }
        for name, trial_fn in protocols.items():
            result = run_trials(
                name=f"E7-{name}-eps={epsilon}",
                trial_fn=trial_fn,
                num_trials=trials,
                base_seed=base_seed,
                runner=runner,
            )
            report.add_row(
                protocol=name,
                epsilon=epsilon,
                mean_final_fraction=result.mean("fraction"),
                success_rate=result.rate("success"),
                mean_rounds=result.mean("rounds"),
            )

        depth = expected_relay_depth(n)
        report.add_note(
            f"eps={epsilon}: Section 1.6 predicts immediate forwarding delivers first messages over "
            f"~{depth:.1f}-hop chains, i.e. correct with probability ~{hop_correct_probability(epsilon, int(depth)):.4f}"
        )

    report.add_note(
        "the voter baseline's round count is its budget; it does not converge under noise "
        "(physics baselines of Section 1.2 are expected to need at least polynomial time even without noise)."
    )
    return report
