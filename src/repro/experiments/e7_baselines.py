"""Experiment E7 — the paper's protocol versus naive baselines (Section 1.6).

Section 1.6 argues that the two obvious strategies fail in the Flip model:

* *immediate forwarding* spreads the rumor fast but over ``Theta(log n)``-hop
  relay chains, so the typical agent's opinion is correct with probability
  only ``1/2 + (2 eps)^{Theta(log n)}`` — essentially a coin flip;
* *adopt-the-last-bit* (noisy voter with a zealot source) cannot converge:
  the per-round update keeps the population bias at the noise floor.

The paper's protocol, in contrast, reaches full correct consensus in
``O(log n / eps^2)`` rounds.  The driver runs all of them (plus the
idealised direct-from-source reference) on identical instances and reports
final correct fraction, success rate, and rounds used.

Reporting convention (never-converged trials)
---------------------------------------------
``mean_rounds`` averages only over trials that *converged* — i.e. met the
protocol's own stopping rule (voter consensus check, direct-source running
majority going all-correct) or completed a schedule that is fixed up front
(the paper's protocol, the forwarding budget).  Trials that merely exhausted
a round budget are **excluded** (the column is ``NaN`` when no trial
converged) instead of being silently counted at the budget, and the separate
``all_correct_rate`` column reports how often the all-correct state was
reached at all.  The same convention applies in
:mod:`repro.experiments.e11_lower_bounds`.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import ExperimentResult, run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import expected_relay_depth, hop_correct_probability
from ..protocols.direct_source import DirectSourceReference
from ..protocols.naive_forward import ImmediateForwardingBroadcast
from ..protocols.noisy_voter import NoisyVoterBroadcast
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_EPSILONS: Sequence[float] = (0.1, 0.2)

#: Report/row order of the compared protocols (the paper's protocol first).
PROTOCOL_ORDER: Sequence[str] = (
    "breathe-before-speaking",
    "immediate-forwarding",
    "noisy-voter",
    "direct-source-reference",
)


def _paper_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the paper's protocol (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=seed)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
    }


def _forwarding_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the immediate-forwarding baseline (module-level, picklable).

    ``converged`` records whether the rumor reached everyone within the
    budget (reach, not correctness); the budget always runs to completion.
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = ImmediateForwardingBroadcast().run(engine, correct_opinion=1)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
        "converged": result.converged,
    }


def _voter_trial(seed: int, _index: int, n: int, epsilon: float, voter_rounds: int) -> dict:
    """One run of the noisy-voter baseline (module-level, hence picklable).

    ``rounds_converged`` is the round count when the dynamics reached full
    correct consensus and ``None`` when the budget was exhausted, so means
    over it never conflate the two (see the module docstring).
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = NoisyVoterBroadcast(max_rounds=voter_rounds).run(engine, correct_opinion=1)
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
        "converged": result.converged,
        "rounds_converged": result.rounds if result.converged else None,
    }


def _direct_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One run of the idealised direct-from-source reference (module-level, picklable).

    ``rounds_to_all_correct`` is the first round at which every agent's
    running majority was correct — explicitly ``None`` (not the sampling
    budget) when that never happened, checked with ``is None`` rather than
    truthiness so a legitimate round number is never mistaken for "never".
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = DirectSourceReference().run(engine, correct_opinion=1)
    first_all_correct = result.extra["first_all_correct_round"]
    return {
        "fraction": result.final_correct_fraction,
        "success": result.success,
        "rounds": result.rounds,
        "rounds_to_all_correct": first_all_correct,
        "all_correct": first_all_correct is not None,
    }


def _serial_tasks(
    n: int, epsilon: float, trials: int, voter_rounds: int, base_seed: int
) -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """The per-protocol serial ``run_trials`` tasks of one epsilon, in row order."""
    trial_fns: Dict[str, Callable[..., Any]] = {
        "breathe-before-speaking": functools.partial(_paper_trial, n=n, epsilon=epsilon),
        "immediate-forwarding": functools.partial(_forwarding_trial, n=n, epsilon=epsilon),
        "noisy-voter": functools.partial(
            _voter_trial, n=n, epsilon=epsilon, voter_rounds=voter_rounds
        ),
        "direct-source-reference": functools.partial(_direct_trial, n=n, epsilon=epsilon),
    }
    return [
        (
            protocol,
            run_trials,
            {
                "name": f"E7-{protocol}-eps={epsilon}",
                "trial_fn": trial_fns[protocol],
                "num_trials": trials,
                "base_seed": base_seed,
            },
        )
        for protocol in PROTOCOL_ORDER
    ]


def _batch_tasks(
    n: int, epsilon: float, trials: int, voter_rounds: int, base_seed: int
) -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """The per-protocol batched simulator tasks of one epsilon, in row order.

    Per-protocol batch seeds are derived from the same experiment names the
    serial path uses, exactly as :func:`repro.exec.batching.run_sweep_batched`
    derives per-point batch seeds.
    """
    from ..exec.batching import run_baseline_batch, run_broadcast_batch
    from ..substrate.rng import derive_seed

    def batch_seed(protocol: str) -> int:
        return derive_seed(base_seed, f"E7-{protocol}-eps={epsilon}", "batch")

    shared = {"n": n, "epsilon": epsilon, "num_replicates": trials}
    return [
        (
            "breathe-before-speaking",
            run_broadcast_batch,
            {**shared, "base_seed": batch_seed("breathe-before-speaking")},
        ),
        (
            "immediate-forwarding",
            run_baseline_batch,
            {
                **shared,
                "protocol": "immediate-forwarding",
                "base_seed": batch_seed("immediate-forwarding"),
            },
        ),
        (
            "noisy-voter",
            run_baseline_batch,
            {
                **shared,
                "protocol": "noisy-voter",
                "max_rounds": voter_rounds,
                "base_seed": batch_seed("noisy-voter"),
            },
        ),
        (
            "direct-source-reference",
            run_baseline_batch,
            {
                **shared,
                "protocol": "direct-source-reference",
                "base_seed": batch_seed("direct-source-reference"),
            },
        ),
    ]


def _add_protocol_row(
    report: ExperimentReport, protocol: str, epsilon: float, result: ExperimentResult
) -> None:
    """Append one comparison row, applying the never-converged convention.

    ``mean_rounds`` excludes budget-exhausted trials (``NaN`` when no trial
    converged) and ``all_correct_rate`` reports how often the all-correct
    state was reached — see the module docstring.
    """
    row: Dict[str, Any] = {
        "protocol": protocol,
        "epsilon": epsilon,
        "mean_final_fraction": result.mean("fraction"),
        "success_rate": result.rate("success"),
    }
    if protocol == "noisy-voter":
        row["mean_rounds"] = result.mean_or("rounds_converged")
        row["all_correct_rate"] = result.rate("converged")
    elif protocol == "direct-source-reference":
        row["mean_rounds"] = result.mean_or("rounds_to_all_correct")
        row["all_correct_rate"] = result.rate("all_correct")
    else:
        # Schedule-fixed protocols: the round count is deterministic and the
        # all-correct state is exactly the end-state success.
        row["mean_rounds"] = result.mean("rounds")
        row["all_correct_rate"] = result.rate("success")
    report.add_row(**row)


def run(
    n: int = 2000,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 4,
    voter_rounds: int = 600,
    base_seed: int = 707,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E7 protocol comparison and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path).
    ``runner`` selects the trial-execution strategy for the serial path;
    ``batch=True`` instead simulates all trials of each (epsilon, protocol)
    cell at once via :func:`repro.exec.batching.run_broadcast_batch` (the
    paper's protocol) and :func:`repro.exec.batching.run_baseline_batch`
    (the Section 1.6 comparators).  ``point_jobs`` spreads the independent
    (epsilon, protocol) cells over worker processes on either path, taking
    precedence over ``runner``; results are assembled in row order so they
    are identical to the in-process run.

    ``mean_rounds`` follows the never-converged convention of the module
    docstring: budget-exhausted trials are excluded and reported through the
    ``all_correct_rate`` column instead.
    """
    from ..exec import pool
    from ..exec.batching import batch_to_experiment_result

    plan = resolve_run_options(
        "E7", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "n": n,
            "epsilons": list(epsilons),
            "trials": trials,
            "voter_rounds": voter_rounds,
            "batch": batch,
        },
    )

    make_tasks = _batch_tasks if batch else _serial_tasks
    tasks: List[Tuple[float, str, Callable[..., Any], Dict[str, Any]]] = [
        (epsilon, protocol, fn, kwargs)
        for epsilon in epsilons
        for protocol, fn, kwargs in make_tasks(n, epsilon, trials, voter_rounds, base_seed)
    ]

    raw_results = pool.run_point_tasks(
        [(fn, kwargs) for _, _, fn, kwargs in tasks],
        point_jobs,
        runner=None if batch else runner,
    )

    results: List[ExperimentResult] = []
    for (epsilon, protocol, _, _), raw in zip(tasks, raw_results):
        if batch:
            raw = batch_to_experiment_result(
                f"E7-{protocol}-eps={epsilon}", raw, base_seed=base_seed
            )
        results.append(raw)

    for (epsilon, protocol, _, _), result in zip(tasks, results):
        _add_protocol_row(report, protocol, epsilon, result)
        if protocol == PROTOCOL_ORDER[-1]:
            depth = expected_relay_depth(n)
            report.add_note(
                f"eps={epsilon}: Section 1.6 predicts immediate forwarding delivers first messages over "
                f"~{depth:.1f}-hop chains, i.e. correct with probability ~{hop_correct_probability(epsilon, int(depth)):.4f}"
            )

    report.add_note(
        "mean_rounds averages converged trials only (NaN when none converged; see the module "
        "docstring); the noisy-voter dynamics do not converge under noise, so their budget "
        "exhaustion shows up as all_correct_rate=0 rather than a fake round count "
        "(physics baselines of Section 1.2 are expected to need at least polynomial time even without noise)."
    )
    return report
