"""Experiment E1 — round complexity versus population size (Theorem 2.17).

Theorem 2.17: the noisy broadcast problem is solved w.h.p. in
``O(log n / eps^2)`` rounds.  At fixed ``epsilon`` the round count must
therefore grow logarithmically in ``n`` while the success rate stays at
(essentially) 1.  The driver sweeps ``n`` over a geometric range, measures
rounds / messages / success, and fits ``rounds ~ a ln n + b``.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..analysis.scaling import fit_log_n_scaling
from ..analysis.sweeps import run_sweep
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import broadcast_round_bound
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

#: Default population sizes (geometric, spanning more than a decade).
DEFAULT_SIZES: Sequence[int] = (250, 500, 1000, 2000, 4000)


def _broadcast_trial(point: Mapping[str, object], seed: int, _index: int, epsilon: float) -> dict:
    """One noisy-broadcast run at a sweep point (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=int(point["n"]), epsilon=epsilon, seed=seed)
    return {
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "success": result.success,
        "final_correct_fraction": result.final_correct_fraction,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    epsilon: float = 0.2,
    trials: int = 5,
    base_seed: int = 101,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E1 sweep and return its report.

    ``config`` carries the execution strategy (see
    :class:`repro.api.config.ExecutionConfig`); the preferred entry point is
    :func:`repro.api.run_experiment`.  The legacy keywords remain a
    deprecation-shimmed path: ``runner`` selects the trial-execution
    strategy (serial by default; process-parallel when a
    :class:`~repro.exec.runner.ParallelTrialRunner` is passed);
    ``batch=True`` instead simulates all trials of each grid point
    simultaneously via :mod:`repro.exec.batching`; ``point_jobs`` spreads
    independent grid points over worker processes on either path (taking
    precedence over ``runner`` where both are given).
    """
    plan = resolve_run_options(
        "E1", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    if batch:
        from ..exec.batching import run_broadcast_sweep_batched

        sweep = run_broadcast_sweep_batched(
            name="E1-rounds-vs-n",
            points=[{"n": n} for n in sizes],
            trials_per_point=trials,
            base_seed=base_seed,
            defaults={"epsilon": epsilon},
            point_jobs=point_jobs,
        )
    else:
        sweep = run_sweep(
            name="E1-rounds-vs-n",
            points=[{"n": n} for n in sizes],
            trial_fn=functools.partial(_broadcast_trial, epsilon=epsilon),
            trials_per_point=trials,
            base_seed=base_seed,
            runner=runner,
            point_jobs=point_jobs,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"sizes": list(sizes), "epsilon": epsilon, "trials": trials},
    )
    for point, result in sweep:
        n = point.as_dict()["n"]
        rounds = result.scalar_summary("rounds")
        report.add_row(
            n=n,
            epsilon=epsilon,
            mean_rounds=rounds.mean,
            rounds_over_log_n=rounds.mean / math.log(n),
            predicted_scale=broadcast_round_bound(n, epsilon),
            success_rate=result.rate("success"),
            mean_final_fraction=result.mean("final_correct_fraction"),
        )

    ns, mean_rounds = sweep.series("n", "rounds")
    fit = fit_log_n_scaling(ns, mean_rounds)
    report.add_note(
        f"fit rounds ~ a*ln(n)+b: a={fit.slope:.1f}, b={fit.intercept:.1f}, R^2={fit.r_squared:.3f} "
        "(logarithmic growth in n, matching Theorem 2.17)"
    )
    return report
