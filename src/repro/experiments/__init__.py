"""Experiment drivers — one module per reproduced claim (the E1–E11 table in README.md).

Each driver exposes a ``run(...)`` function returning an
:class:`~repro.experiments.report.ExperimentReport`; the benchmark files in
``benchmarks/`` call these drivers and print the rendered reports;
``benchmarks/results/`` records representative outputs.
"""

from . import (
    e1_rounds_vs_n,
    e2_rounds_vs_eps,
    e3_messages,
    e4_phase0,
    e5_stage1_growth,
    e6_stage2_boost,
    e7_baselines,
    e8_majority,
    e9_async,
    e10_majority_lemma,
    e11_lower_bounds,
)
from .report import ExperimentReport

__all__ = [
    "ExperimentReport",
    "e1_rounds_vs_n",
    "e2_rounds_vs_eps",
    "e3_messages",
    "e4_phase0",
    "e5_stage1_growth",
    "e6_stage2_boost",
    "e7_baselines",
    "e8_majority",
    "e9_async",
    "e10_majority_lemma",
    "e11_lower_bounds",
]

#: Mapping from experiment id to its driver module (used by the CLI).
DRIVERS = {
    "E1": e1_rounds_vs_n,
    "E2": e2_rounds_vs_eps,
    "E3": e3_messages,
    "E4": e4_phase0,
    "E5": e5_stage1_growth,
    "E6": e6_stage2_boost,
    "E7": e7_baselines,
    "E8": e8_majority,
    "E9": e9_async,
    "E10": e10_majority_lemma,
    "E11": e11_lower_bounds,
}
