"""Experiment drivers — one module per reproduced claim (the E1–E12 table in README.md).

Each driver exposes a ``run(...)`` function returning an
:class:`~repro.experiments.report.ExperimentReport`.  The preferred way to
invoke them is the unified API (:func:`repro.api.run_experiment` with an
:class:`~repro.api.config.ExecutionConfig`), which resolves capabilities and
defaults from the declarative registry in :mod:`repro.api.spec`; the
per-driver ``run`` keyword arguments ``runner=`` / ``batch=`` /
``point_jobs=`` remain as a deprecation-shimmed compatibility path.  The
benchmark files in ``benchmarks/`` run the drivers through the unified API
and print the rendered reports; ``benchmarks/results/`` records
representative outputs.
"""

from . import (
    e1_rounds_vs_n,
    e2_rounds_vs_eps,
    e3_messages,
    e4_phase0,
    e5_stage1_growth,
    e6_stage2_boost,
    e7_baselines,
    e8_majority,
    e9_async,
    e10_majority_lemma,
    e11_lower_bounds,
    e12_faults,
)
from .report import ExperimentReport

__all__ = [
    "ExperimentReport",
    "e1_rounds_vs_n",
    "e2_rounds_vs_eps",
    "e3_messages",
    "e4_phase0",
    "e5_stage1_growth",
    "e6_stage2_boost",
    "e7_baselines",
    "e8_majority",
    "e9_async",
    "e10_majority_lemma",
    "e11_lower_bounds",
    "e12_faults",
]

#: Mapping from experiment id to its driver module.  Legacy alias: the
#: declarative registry (:data:`repro.api.spec.REGISTRY`) is the canonical
#: index — it additionally carries titles, claims, capability flags and
#: parameter defaults — and a test pins the two against each other.
DRIVERS = {
    "E1": e1_rounds_vs_n,
    "E2": e2_rounds_vs_eps,
    "E3": e3_messages,
    "E4": e4_phase0,
    "E5": e5_stage1_growth,
    "E6": e6_stage2_boost,
    "E7": e7_baselines,
    "E8": e8_majority,
    "E9": e9_async,
    "E10": e10_majority_lemma,
    "E11": e11_lower_bounds,
    "E12": e12_faults,
}
