"""Experiment E8 — majority-consensus feasibility region (Corollary 2.18).

Corollary 2.18: the noisy majority-consensus problem is solvable in
``O(log n / eps^2)`` rounds whenever the initial opinionated set satisfies
``|A| = Omega(log n / eps^2)`` *and* its majority-bias is
``Omega(sqrt(log n / |A|))``.  Below those thresholds the initial signal is
simply not statistically identifiable, so no symmetric protocol can
guarantee the majority opinion wins.

The driver sweeps ``|A|`` and the initial majority-bias on a grid and
measures the success rate of the protocol, showing the feasibility
transition around the ``sqrt(log n / |A|)`` curve.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..analysis.sweeps import parameter_grid, run_sweep
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.majority import solve_noisy_majority_consensus
from ..core.theory import majority_consensus_min_bias, majority_consensus_min_set_size
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_SET_SIZES: Sequence[int] = (50, 200, 800)
DEFAULT_BIASES: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.35)


def _majority_trial(point: Mapping[str, object], seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One majority-consensus run at a sweep point (module-level, hence picklable)."""
    result = solve_noisy_majority_consensus(
        n=n,
        epsilon=epsilon,
        initial_set_size=int(point["set_size"]),
        majority_bias=float(point["bias"]),
        seed=seed,
    )
    return {
        "success": result.success,
        "final_fraction": result.final_correct_fraction,
        "rounds": result.rounds,
    }


def run(
    n: int = 2000,
    epsilon: float = 0.2,
    set_sizes: Sequence[int] = DEFAULT_SET_SIZES,
    biases: Sequence[float] = DEFAULT_BIASES,
    trials: int = 5,
    base_seed: int = 808,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E8 feasibility sweep and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path).  ``runner`` selects the
    trial-execution strategy (serial by default; process-parallel when a
    :class:`~repro.exec.runner.ParallelTrialRunner` is passed);
    ``batch=True`` instead simulates all trials of each grid point
    simultaneously via :func:`repro.exec.batching.run_majority_batch`.
    ``point_jobs`` spreads independent grid points over worker processes on
    either path (taking precedence over ``runner`` where both are given).
    """
    plan = resolve_run_options(
        "E8", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    if batch:
        from ..exec.batching import run_sweep_batched

        sweep = run_sweep_batched(
            name="E8-majority-consensus",
            points=parameter_grid(set_size=list(set_sizes), bias=list(biases)),
            trials_per_point=trials,
            base_seed=base_seed,
            defaults={"n": n, "epsilon": epsilon},
            shape="majority",
            point_jobs=point_jobs,
        )
    else:
        sweep = run_sweep(
            name="E8-majority-consensus",
            points=parameter_grid(set_size=list(set_sizes), bias=list(biases)),
            trial_fn=functools.partial(_majority_trial, n=n, epsilon=epsilon),
            trials_per_point=trials,
            base_seed=base_seed,
            runner=runner,
            point_jobs=point_jobs,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "n": n,
            "epsilon": epsilon,
            "set_sizes": list(set_sizes),
            "biases": list(biases),
            "trials": trials,
            "min_set_size_scale": majority_consensus_min_set_size(n, epsilon),
        },
    )
    for point, result in sweep:
        params = point.as_dict()
        set_size, bias = params["set_size"], params["bias"]
        threshold = majority_consensus_min_bias(set_size, n)
        report.add_row(
            set_size=set_size,
            initial_bias=bias,
            bias_threshold_sqrt_logn_over_A=threshold,
            above_threshold=bias >= threshold,
            success_rate=result.rate("success"),
            mean_final_fraction=result.mean("final_fraction"),
            mean_rounds=result.mean("rounds"),
        )

    report.add_note(
        "the paper guarantees success only above the threshold (above_threshold=yes rows); "
        "below it the protocol still converges to *some* opinion, but the success rate degrades towards "
        "the probability that sampling noise preserves the thin initial majority."
    )
    return report
