"""Experiment E5 — Stage I layer growth and bias deterioration (Claims 2.4-2.8).

The analysis of Stage I tracks, phase by phase:

* ``X_i`` — agents activated by the end of phase ``i``; Claim 2.4 shows
  ``(beta+1)^i X_0 / 16 <= X_i <= (beta+1)^i X_0`` (geometric growth);
* ``Y_i`` — agents newly activated during phase ``i``; Corollary 2.7 lower
  bounds it by ``beta^{i-1} log n``;
* ``eps_i`` — the bias of the newly activated agents' initial opinions;
  Claim 2.8 shows ``eps_i >= eps^{i+1} / 2`` (exponential deterioration,
  which is exactly what Stage II is designed to undo);
* Corollaries 2.5/2.6 — ``X_T = Omega(eps^2 n)`` and all agents activated by
  the end of phase ``T + 1``.

To observe several intermediate phases at laptop scale the driver uses a
Stage-I parameterisation with a deliberately small per-phase length ``beta``
(``beta_override``), which is allowed by the paper (any
``beta = Theta(1/eps^2)`` with a large enough constant works asymptotically;
shrinking it only weakens the concentration, visible as occasional
near-misses of the 1/16 constant).

With ``batch=True`` all trials execute simultaneously on ``(R, n)`` grids
through the instrumented stage kernel
(:func:`repro.exec.stage_batching.run_stage1_instrumented`), whose per-phase
replicate vectors carry exactly the ``X_i`` / ``Y_i`` / ``eps_i``
observables the serial trial reads off
:class:`~repro.core.stage1.StageOnePhaseSummary`.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Any, Optional, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.parameters import ProtocolParameters, StageOneParameters
from ..core.stage1 import execute_stage_one
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]


def _stage1_trial(
    seed: int, _index: int, n: int, epsilon: float, parameters: StageOneParameters
) -> dict:
    """One full Stage-I run with per-phase measurements (module-level, picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    engine.population.set_source_opinion(1)
    stage1 = execute_stage_one(engine, parameters, correct_opinion=1)
    measurements = {
        "all_activated": stage1.all_activated,
        "final_bias": stage1.final_bias,
    }
    for phase in stage1.phases:
        measurements[f"x_{phase.phase}"] = phase.activated_total
        measurements[f"y_{phase.phase}"] = phase.newly_activated
        measurements[f"bias_{phase.phase}"] = phase.bias_of_new
    return measurements


def _stage1_batch_result(
    name: str, n: int, epsilon: float, trials: int, base_seed: int, parameters: StageOneParameters
) -> "Any":
    """All trials at once on ``(R, n)`` grids, with the serial measurement keys."""
    from ..exec.batching import measurements_to_experiment_result
    from ..exec.stage_batching import run_stage1_instrumented
    from ..substrate.rng import derive_seed

    batch = run_stage1_instrumented(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    measurements = []
    for index in range(trials):
        trial = {
            "all_activated": bool(batch.all_activated[index]),
            "final_bias": float(batch.final_bias[index]),
        }
        for phase in batch.phases:
            trial[f"x_{phase.phase}"] = int(phase.activated_total[index])
            trial[f"y_{phase.phase}"] = int(phase.newly_activated[index])
            trial[f"bias_{phase.phase}"] = float(phase.bias_of_new[index])
        measurements.append(trial)
    return measurements_to_experiment_result(name, measurements, base_seed=base_seed)


def run(
    n: int = 8000,
    epsilon: float = 0.35,
    beta_override: int = 8,
    trials: int = 5,
    base_seed: int = 505,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E5 per-phase measurement and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path); ``batch=True`` simulates all trials at
    once via the instrumented Stage-I batch kernel.
    """
    plan = resolve_run_options("E5", config=config, runner=runner, batch=batch)
    runner, batch = plan.runner, plan.batch
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    parameters = ProtocolParameters.calibrated(n, epsilon, s0=1.0, beta_override=beta_override)
    stage1_params = parameters.stage1

    if batch:
        result = _stage1_batch_result(
            "E5-stage1-growth", n, epsilon, trials, base_seed, stage1_params
        )
    else:
        result = run_trials(
            name="E5-stage1-growth",
            trial_fn=functools.partial(
                _stage1_trial, n=n, epsilon=epsilon, parameters=stage1_params
            ),
            num_trials=trials,
            base_seed=base_seed,
            runner=runner,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={
            "n": n,
            "epsilon": epsilon,
            "beta": stage1_params.beta,
            "beta_s": stage1_params.beta_s,
            "T": stage1_params.num_intermediate_phases,
            "trials": trials,
        },
    )

    num_phases = stage1_params.num_phases
    mean_x0 = result.mean("x_0")
    for phase_index in range(num_phases):
        mean_x = result.mean(f"x_{phase_index}")
        mean_y = result.mean(f"y_{phase_index}")
        mean_bias = result.mean(f"bias_{phase_index}")
        geometric_reference = mean_x0 * (stage1_params.beta + 1) ** phase_index
        claimed_min_bias = (epsilon ** (phase_index + 1)) / 2.0
        report.add_row(
            phase=phase_index,
            mean_X_i=mean_x,
            mean_Y_i=mean_y,
            growth_vs_geometric=min(mean_x / geometric_reference, 1.0)
            if phase_index <= stage1_params.num_intermediate_phases
            else None,
            mean_bias_eps_i=mean_bias,
            claimed_min_bias=claimed_min_bias,
            bias_above_claim=mean_bias >= claimed_min_bias,
        )

    target_bias = math.sqrt(math.log(n) / n)
    report.add_note(
        f"all agents activated at end of Stage I in {result.rate('all_activated'):.0%} of trials; "
        f"mean final bias {result.mean('final_bias'):.4f} "
        f"(Lemma 2.3 target Omega(sqrt(log n / n)) ~ {target_bias:.4f})"
    )
    return report
