"""Experiment E4 — Stage I phase 0 (Claim 2.2).

Claim 2.2: choosing ``s > c / eps^2`` large enough guarantees that at the end
of phase 0 (only the source speaks, for ``beta_s = s log n`` rounds), w.h.p.

* the number of activated agents satisfies ``beta_s / 3 <= X0 <= beta_s``, and
* their bias towards the correct opinion is at least ``eps / 2``.

The driver runs phase 0 many times and reports the distribution of ``X0`` and
``eps_0`` together with the fraction of trials satisfying both bounds.  With
``batch=True`` all trials of one epsilon execute simultaneously on
``(R, n)`` grids through the instrumented stage kernel
(:func:`repro.exec.stage_batching.run_stage1_instrumented`), which records
the same per-phase ``X_0`` / ``eps_0`` observables the serial trial reads
off :class:`~repro.core.stage1.StageOnePhaseSummary`.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.parameters import ProtocolParameters, StageOneParameters
from ..core.stage1 import execute_stage_one
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_EPSILONS: Sequence[float] = (0.1, 0.2, 0.3)


def _phase0_only_parameters(n: int, epsilon: float) -> StageOneParameters:
    """Stage-I parameters whose only substantial phase is phase 0."""
    calibrated = ProtocolParameters.calibrated(n, epsilon).stage1
    return StageOneParameters(
        beta_s=calibrated.beta_s,
        beta=1,
        beta_f=1,
        num_intermediate_phases=0,
    )


def _phase0_measurements(x0: int, bias0: float, epsilon: float, parameters: StageOneParameters) -> dict:
    """Claim 2.2's per-trial observables, shared by the serial and batch paths."""
    return {
        "x0": x0,
        "bias0": bias0,
        "x0_within_bounds": bool(parameters.beta_s / 3 <= x0 <= parameters.beta_s),
        "bias_at_least_half_eps": bool(bias0 >= epsilon / 2),
    }


def _phase0_trial(
    seed: int, _index: int, n: int, epsilon: float, parameters: StageOneParameters
) -> dict:
    """One phase-0-only Stage-I run (module-level, hence picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    engine.population.set_source_opinion(1)
    stage1 = execute_stage_one(engine, parameters, correct_opinion=1)
    phase0 = stage1.phase(0)
    # X0 counts non-source activated agents, as in the claim's setup.
    return _phase0_measurements(
        phase0.activated_total - 1, phase0.bias_of_new, epsilon, parameters
    )


def _phase0_batch_result(
    name: str, n: int, epsilon: float, trials: int, base_seed: int, parameters: StageOneParameters
) -> "Any":
    """All trials of one epsilon at once on ``(R, n)`` grids (module-level, picklable).

    The per-cell batch seed is derived from the same experiment name the
    serial path uses, exactly as :func:`repro.exec.batching.run_sweep_batched`
    derives per-point batch seeds.
    """
    from ..exec.batching import measurements_to_experiment_result
    from ..exec.stage_batching import run_stage1_instrumented
    from ..substrate.rng import derive_seed

    batch = run_stage1_instrumented(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    phase0 = batch.phase(0)
    measurements = [
        _phase0_measurements(
            int(phase0.activated_total[index]) - 1,
            float(phase0.bias_of_new[index]),
            epsilon,
            parameters,
        )
        for index in range(trials)
    ]
    return measurements_to_experiment_result(name, measurements, base_seed=base_seed)


def run(
    n: int = 4000,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 30,
    base_seed: int = 404,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E4 Monte-Carlo and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path).  ``runner`` selects the trial-execution
    strategy for the serial path; ``batch=True`` instead simulates all trials
    of each epsilon at once via the instrumented Stage-I batch kernel;
    ``point_jobs`` spreads the independent epsilon cells over worker
    processes on either path, with results assembled in cell order.
    """
    from ..exec import pool

    plan = resolve_run_options(
        "E4", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"n": n, "epsilons": list(epsilons), "trials": trials},
    )

    tasks: List[Tuple[float, StageOneParameters, Callable[..., Any], Dict[str, Any]]] = []
    for epsilon in epsilons:
        parameters = _phase0_only_parameters(n, epsilon)
        name = f"E4-phase0-eps={epsilon}"
        if batch:
            fn: Callable[..., Any] = _phase0_batch_result
            kwargs: Dict[str, Any] = {
                "name": name,
                "n": n,
                "epsilon": epsilon,
                "trials": trials,
                "base_seed": base_seed,
                "parameters": parameters,
            }
        else:
            fn = run_trials
            kwargs = {
                "name": name,
                "trial_fn": functools.partial(
                    _phase0_trial, n=n, epsilon=epsilon, parameters=parameters
                ),
                "num_trials": trials,
                "base_seed": base_seed,
            }
        tasks.append((epsilon, parameters, fn, kwargs))

    results = pool.run_point_tasks(
        [(fn, kwargs) for _, _, fn, kwargs in tasks],
        point_jobs,
        runner=None if batch else runner,
    )

    for (epsilon, parameters, _, _), result in zip(tasks, results):
        x0_summary = result.scalar_summary("x0")
        report.add_row(
            n=n,
            epsilon=epsilon,
            beta_s=parameters.beta_s,
            mean_x0=x0_summary.mean,
            min_x0=x0_summary.minimum,
            max_x0=x0_summary.maximum,
            mean_bias0=result.mean("bias0"),
            claimed_min_bias=epsilon / 2,
            x0_bound_rate=result.rate("x0_within_bounds"),
            bias_bound_rate=result.rate("bias_at_least_half_eps"),
        )

    report.add_note(
        "x0_bound_rate / bias_bound_rate are the fractions of trials satisfying Claim 2.2's "
        "two bounds; with calibrated (small) constants a small fraction of near-miss trials is expected."
    )
    return report
