"""Experiment E4 — Stage I phase 0 (Claim 2.2).

Claim 2.2: choosing ``s > c / eps^2`` large enough guarantees that at the end
of phase 0 (only the source speaks, for ``beta_s = s log n`` rounds), w.h.p.

* the number of activated agents satisfies ``beta_s / 3 <= X0 <= beta_s``, and
* their bias towards the correct opinion is at least ``eps / 2``.

The driver runs phase 0 many times and reports the distribution of ``X0`` and
``eps_0`` together with the fraction of trials satisfying both bounds.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.parameters import ProtocolParameters, StageOneParameters
from ..core.stage1 import execute_stage_one
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_EPSILONS: Sequence[float] = (0.1, 0.2, 0.3)


def _phase0_only_parameters(n: int, epsilon: float) -> StageOneParameters:
    """Stage-I parameters whose only substantial phase is phase 0."""
    calibrated = ProtocolParameters.calibrated(n, epsilon).stage1
    return StageOneParameters(
        beta_s=calibrated.beta_s,
        beta=1,
        beta_f=1,
        num_intermediate_phases=0,
    )


def _phase0_trial(
    seed: int, _index: int, n: int, epsilon: float, parameters: StageOneParameters
) -> dict:
    """One phase-0-only Stage-I run (module-level, hence picklable)."""
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    engine.population.set_source_opinion(1)
    stage1 = execute_stage_one(engine, parameters, correct_opinion=1)
    phase0 = stage1.phase(0)
    # X0 counts non-source activated agents, as in the claim's setup.
    x0 = phase0.activated_total - 1
    bias0 = phase0.bias_of_new
    return {
        "x0": x0,
        "bias0": bias0,
        "x0_within_bounds": parameters.beta_s / 3 <= x0 <= parameters.beta_s,
        "bias_at_least_half_eps": bias0 >= epsilon / 2,
    }


def run(
    n: int = 4000,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 30,
    base_seed: int = 404,
    runner: Optional["TrialRunner"] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E4 Monte-Carlo and return its report.

    ``config`` carries the execution strategy; the ``runner`` keyword is the
    deprecation-shimmed legacy path.
    """
    plan = resolve_run_options("E4", config=config, runner=runner)
    runner = plan.runner
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"n": n, "epsilons": list(epsilons), "trials": trials},
    )

    for epsilon in epsilons:
        parameters = _phase0_only_parameters(n, epsilon)

        result = run_trials(
            name=f"E4-phase0-eps={epsilon}",
            trial_fn=functools.partial(_phase0_trial, n=n, epsilon=epsilon, parameters=parameters),
            num_trials=trials,
            base_seed=base_seed,
            runner=runner,
        )
        x0_summary = result.scalar_summary("x0")
        report.add_row(
            n=n,
            epsilon=epsilon,
            beta_s=parameters.beta_s,
            mean_x0=x0_summary.mean,
            min_x0=x0_summary.minimum,
            max_x0=x0_summary.maximum,
            mean_bias0=result.mean("bias0"),
            claimed_min_bias=epsilon / 2,
            x0_bound_rate=result.rate("x0_within_bounds"),
            bias_bound_rate=result.rate("bias_at_least_half_eps"),
        )

    report.add_note(
        "x0_bound_rate / bias_bound_rate are the fractions of trials satisfying Claim 2.2's "
        "two bounds; with calibrated (small) constants a small fraction of near-miss trials is expected."
    )
    return report
