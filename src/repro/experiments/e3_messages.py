"""Experiment E3 — message/bit complexity (Theorem 2.17).

Theorem 2.17 also bounds the total number of messages (equivalently bits,
since each message is one bit) by ``O(n log n / eps^2)``.  The driver sweeps
a small grid of ``(n, epsilon)`` pairs, measures the total messages sent by
the protocol and normalises by ``n ln(n) / eps^2``: the normalised value
should stay bounded (roughly constant) across the grid.  It also reports the
average number of messages per agent, which should track the round count —
the paper's point that agents essentially speak once per round after
activation.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..analysis.sweeps import parameter_grid, run_sweep
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import broadcast_message_bound
from .report import ExperimentReport

__all__ = ["run"]

DEFAULT_SIZES: Sequence[int] = (500, 1000, 2000)
DEFAULT_EPSILONS: Sequence[float] = (0.15, 0.25)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 3,
    base_seed: int = 303,
) -> ExperimentReport:
    """Run the E3 sweep and return its report."""

    def trial(point, seed, _index):
        result = solve_noisy_broadcast(n=point["n"], epsilon=point["epsilon"], seed=seed)
        return {
            "rounds": result.rounds,
            "messages": result.messages_sent,
            "messages_per_agent": result.messages_per_agent,
            "success": result.success,
        }

    sweep = run_sweep(
        name="E3-message-complexity",
        points=parameter_grid(n=list(sizes), epsilon=list(epsilons)),
        trial_fn=trial,
        trials_per_point=trials,
        base_seed=base_seed,
    )

    report = ExperimentReport(
        experiment_id="E3",
        title="Total message (bit) complexity of the broadcast protocol",
        claim="Theorem 2.17: O(n log n / eps^2) messages in total",
        config={"sizes": list(sizes), "epsilons": list(epsilons), "trials": trials},
    )
    normalised_values = []
    for point, result in sweep:
        params = point.as_dict()
        n, epsilon = params["n"], params["epsilon"]
        messages = result.mean("messages")
        rounds = result.mean("rounds")
        scale = broadcast_message_bound(n, epsilon)
        normalised = messages / scale
        normalised_values.append(normalised)
        report.add_row(
            n=n,
            epsilon=epsilon,
            mean_messages=messages,
            messages_over_nlogn_eps2=normalised,
            messages_per_agent=result.mean("messages_per_agent"),
            messages_per_agent_over_rounds=result.mean("messages_per_agent") / rounds,
            success_rate=result.rate("success"),
        )

    spread = max(normalised_values) / min(normalised_values)
    report.add_note(
        f"messages / (n ln n / eps^2) stays within a factor {spread:.2f} across the grid "
        "(bounded constant, matching the O(n log n / eps^2) claim)"
    )
    report.add_note(
        "messages_per_agent_over_rounds < 1 because agents are silent while dormant "
        "('breathe before speaking') and because only opinionated agents transmit."
    )
    return report
