"""Experiment E3 — message/bit complexity (Theorem 2.17).

Theorem 2.17 also bounds the total number of messages (equivalently bits,
since each message is one bit) by ``O(n log n / eps^2)``.  The driver sweeps
a small grid of ``(n, epsilon)`` pairs, measures the total messages sent by
the protocol and normalises by ``n ln(n) / eps^2``: the normalised value
should stay bounded (roughly constant) across the grid.  It also reports the
average number of messages per agent, which should track the round count —
the paper's point that agents essentially speak once per round after
activation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..analysis.sweeps import parameter_grid, run_sweep
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import broadcast_message_bound
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_SIZES: Sequence[int] = (500, 1000, 2000)
DEFAULT_EPSILONS: Sequence[float] = (0.15, 0.25)


def _broadcast_trial(point: Mapping[str, object], seed: int, _index: int) -> dict:
    """One noisy-broadcast run at a sweep point (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=int(point["n"]), epsilon=float(point["epsilon"]), seed=seed)
    return {
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "messages_per_agent": result.messages_per_agent,
        "success": result.success,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    trials: int = 3,
    base_seed: int = 303,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E3 sweep and return its report.

    ``config`` and the deprecation-shimmed ``runner`` / ``batch`` /
    ``point_jobs`` keywords select the execution strategy exactly as in
    :func:`repro.experiments.e1_rounds_vs_n.run`.
    """
    plan = resolve_run_options(
        "E3", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    if batch:
        from ..exec.batching import run_broadcast_sweep_batched

        sweep = run_broadcast_sweep_batched(
            name="E3-message-complexity",
            points=parameter_grid(n=list(sizes), epsilon=list(epsilons)),
            trials_per_point=trials,
            base_seed=base_seed,
            point_jobs=point_jobs,
        )
    else:
        sweep = run_sweep(
            name="E3-message-complexity",
            points=parameter_grid(n=list(sizes), epsilon=list(epsilons)),
            trial_fn=_broadcast_trial,
            trials_per_point=trials,
            base_seed=base_seed,
            runner=runner,
            point_jobs=point_jobs,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"sizes": list(sizes), "epsilons": list(epsilons), "trials": trials},
    )
    normalised_values = []
    for point, result in sweep:
        params = point.as_dict()
        n, epsilon = params["n"], params["epsilon"]
        messages = result.mean("messages")
        rounds = result.mean("rounds")
        scale = broadcast_message_bound(n, epsilon)
        normalised = messages / scale
        normalised_values.append(normalised)
        report.add_row(
            n=n,
            epsilon=epsilon,
            mean_messages=messages,
            messages_over_nlogn_eps2=normalised,
            messages_per_agent=result.mean("messages_per_agent"),
            messages_per_agent_over_rounds=result.mean("messages_per_agent") / rounds,
            success_rate=result.rate("success"),
        )

    spread = max(normalised_values) / min(normalised_values)
    report.add_note(
        f"messages / (n ln n / eps^2) stays within a factor {spread:.2f} across the grid "
        "(bounded constant, matching the O(n log n / eps^2) claim)"
    )
    report.add_note(
        "messages_per_agent_over_rounds < 1 because agents are silent while dormant "
        "('breathe before speaking') and because only opinionated agents transmit."
    )
    return report
