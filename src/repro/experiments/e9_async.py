"""Experiment E9 — removing the global clock (Section 3, Theorem 3.1).

Theorem 3.1: the broadcast (and majority-consensus) protocols still work
when agents only have local clocks, at an additive cost of ``O(log^2 n)``
rounds and with unchanged message complexity.  Two mechanisms are involved:

* bounded skew ``D`` (Section 3.1): every phase is preceded by a guard window
  of ``D`` silent rounds — additive cost ``D * O(log n)``;
* the activation phase (Section 3.2) reduces arbitrary skew to
  ``D = 2 log n`` — additive cost ``O(log n)`` rounds and ``O(n log n)``
  messages.

The driver measures, on identical instances: the fully-synchronous protocol,
the bounded-skew variant for several values of ``D``, and the full clock-free
protocol (activation phase + guards).  Reported: rounds, round overhead over
the synchronous run, message ratio, and success rate.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.parameters import ProtocolParameters
from ..core.synchronizer import default_guard, run_clock_free_broadcast, run_with_bounded_skew
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_SKEWS: Sequence[int] = (8, 32, 128)


def _sync_trial(seed: int, _index: int, n: int, epsilon: float, parameters: ProtocolParameters) -> dict:
    """One fully-synchronous broadcast run (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=seed, parameters=parameters)
    return {"rounds": result.rounds, "messages": result.messages_sent, "success": result.success}


def _skew_trial(
    seed: int, _index: int, n: int, epsilon: float, skew: int, parameters: ProtocolParameters
) -> dict:
    """One bounded-skew broadcast run (module-level, hence picklable)."""
    result = run_with_bounded_skew(n=n, epsilon=epsilon, max_skew=skew, seed=seed, parameters=parameters)
    return {"rounds": result.rounds, "messages": result.messages_sent, "success": result.success}


def _clock_free_trial(seed: int, _index: int, n: int, epsilon: float, parameters: ProtocolParameters) -> dict:
    """One clock-free broadcast run (module-level, hence picklable)."""
    result = run_clock_free_broadcast(n=n, epsilon=epsilon, seed=seed, parameters=parameters)
    return {
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "success": result.success,
        "skew": result.activation.skew if result.activation else 0,
    }


def run(
    n: int = 1000,
    epsilon: float = 0.25,
    skews: Sequence[int] = DEFAULT_SKEWS,
    trials: int = 3,
    base_seed: int = 909,
    runner: Optional["TrialRunner"] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E9 comparison and return its report.

    ``config`` carries the execution strategy; the ``runner`` keyword is the
    deprecation-shimmed legacy path.
    """
    plan = resolve_run_options("E9", config=config, runner=runner)
    runner = plan.runner
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    parameters = ProtocolParameters.calibrated(n, epsilon)
    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        # The registry claim is the static Theorem 3.1 statement; the report
        # additionally pins the concrete guard for this run's n.
        claim=(
            "Theorem 3.1: additive O(log^2 n) rounds "
            f"(guard D = 2 log2 n = {default_guard(n)} per phase), unchanged message complexity"
        ),
        config={"n": n, "epsilon": epsilon, "skews": list(skews), "trials": trials},
    )

    sync = run_trials(
        "E9-synchronous",
        functools.partial(_sync_trial, n=n, epsilon=epsilon, parameters=parameters),
        num_trials=trials,
        base_seed=base_seed,
        runner=runner,
    )
    sync_rounds = sync.mean("rounds")
    sync_messages = sync.mean("messages")
    report.add_row(
        variant="fully-synchronous",
        skew_D=0,
        mean_rounds=sync_rounds,
        overhead_rounds=0.0,
        predicted_overhead=0.0,
        message_ratio_vs_sync=1.0,
        success_rate=sync.rate("success"),
    )

    num_phases = parameters.stage1.num_phases + parameters.stage2.num_phases

    for skew in skews:
        skewed = run_trials(
            f"E9-skew-{skew}",
            functools.partial(_skew_trial, n=n, epsilon=epsilon, skew=skew, parameters=parameters),
            num_trials=trials,
            base_seed=base_seed,
            runner=runner,
        )
        report.add_row(
            variant="bounded-skew",
            skew_D=skew,
            mean_rounds=skewed.mean("rounds"),
            overhead_rounds=skewed.mean("rounds") - sync_rounds,
            predicted_overhead=float(skew * num_phases + skew),
            message_ratio_vs_sync=skewed.mean("messages") / sync_messages,
            success_rate=skewed.rate("success"),
        )

    clock_free = run_trials(
        "E9-clock-free",
        functools.partial(_clock_free_trial, n=n, epsilon=epsilon, parameters=parameters),
        num_trials=trials,
        base_seed=base_seed,
        runner=runner,
    )
    guard = default_guard(n)
    report.add_row(
        variant="clock-free (activation + guards)",
        skew_D=guard,
        mean_rounds=clock_free.mean("rounds"),
        overhead_rounds=clock_free.mean("rounds") - sync_rounds,
        predicted_overhead=float(guard * num_phases + 3 * guard),
        message_ratio_vs_sync=clock_free.mean("messages") / sync_messages,
        success_rate=clock_free.rate("success"),
    )

    report.add_note(
        f"predicted_overhead ~ D * (number of phases = {num_phases}) plus the activation phase; "
        f"with D = 2 log2 n this is the Theorem 3.1 additive O(log^2 n) term "
        f"(log2(n)^2 = {math.log2(n) ** 2:.0f} for n = {n})"
    )
    report.add_note(
        "message_ratio_vs_sync stays close to 1 for bounded skew (guards are silent rounds); "
        "the clock-free variant adds the activation phase's O(n log n) arbitrary messages."
    )
    return report
