"""Experiment E9 — removing the global clock (Section 3, Theorem 3.1).

Theorem 3.1: the broadcast (and majority-consensus) protocols still work
when agents only have local clocks, at an additive cost of ``O(log^2 n)``
rounds and with unchanged message complexity.  Two mechanisms are involved:

* bounded skew ``D`` (Section 3.1): every phase is preceded by a guard window
  of ``D`` silent rounds — additive cost ``D * O(log n)``;
* the activation phase (Section 3.2) reduces arbitrary skew to
  ``D = 2 log n`` — additive cost ``O(log n)`` rounds and ``O(n log n)``
  messages.

The driver measures, on identical instances: the fully-synchronous protocol,
the bounded-skew variant for several values of ``D``, and the full clock-free
protocol (activation phase + guards).  Reported: rounds, round overhead over
the synchronous run, message ratio, and success rate.

With ``batch=True`` every variant simulates all of its trials at once on
``(R, n)`` grids: the synchronous run through
:func:`repro.exec.batching.run_broadcast_batch` and the Section-3 variants
through the windowed batch executors
(:func:`repro.exec.stage_batching.run_bounded_skew_batch` /
:func:`repro.exec.stage_batching.run_clock_free_batch`), each replicate
carrying its own clock offsets, guard and dilated schedule exactly as the
serial executors do.  ``point_jobs`` additionally spreads the independent
variant cells over worker processes on either path.
"""

from __future__ import annotations

import functools
import math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.parameters import ProtocolParameters
from ..core.synchronizer import default_guard, run_clock_free_broadcast, run_with_bounded_skew
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_SKEWS: Sequence[int] = (8, 32, 128)


def _sync_trial(seed: int, _index: int, n: int, epsilon: float, parameters: ProtocolParameters) -> dict:
    """One fully-synchronous broadcast run (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=seed, parameters=parameters)
    return {"rounds": result.rounds, "messages": result.messages_sent, "success": result.success}


def _skew_trial(
    seed: int, _index: int, n: int, epsilon: float, skew: int, parameters: ProtocolParameters
) -> dict:
    """One bounded-skew broadcast run (module-level, hence picklable)."""
    result = run_with_bounded_skew(n=n, epsilon=epsilon, max_skew=skew, seed=seed, parameters=parameters)
    return {"rounds": result.rounds, "messages": result.messages_sent, "success": result.success}


def _clock_free_trial(seed: int, _index: int, n: int, epsilon: float, parameters: ProtocolParameters) -> dict:
    """One clock-free broadcast run (module-level, hence picklable)."""
    result = run_clock_free_broadcast(n=n, epsilon=epsilon, seed=seed, parameters=parameters)
    return {
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "success": result.success,
        "skew": result.activation.skew if result.activation else 0,
    }


def _sync_batch_result(
    name: str, n: int, epsilon: float, trials: int, base_seed: int, parameters: ProtocolParameters
) -> "Any":
    """All synchronous trials at once (module-level, hence picklable)."""
    from ..exec.batching import batch_to_experiment_result, run_broadcast_batch
    from ..substrate.rng import derive_seed

    batch = run_broadcast_batch(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    return batch_to_experiment_result(name, batch, base_seed=base_seed)


def _skew_batch_result(
    name: str,
    n: int,
    epsilon: float,
    trials: int,
    base_seed: int,
    skew: int,
    parameters: ProtocolParameters,
) -> "Any":
    """All bounded-skew trials at once (module-level, hence picklable)."""
    from ..exec.batching import batch_to_experiment_result
    from ..exec.stage_batching import run_bounded_skew_batch
    from ..substrate.rng import derive_seed

    batch = run_bounded_skew_batch(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        max_skew=skew,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    return batch_to_experiment_result(name, batch, base_seed=base_seed)


def _clock_free_batch_result(
    name: str, n: int, epsilon: float, trials: int, base_seed: int, parameters: ProtocolParameters
) -> "Any":
    """All clock-free trials at once (module-level, hence picklable)."""
    from ..exec.batching import batch_to_experiment_result
    from ..exec.stage_batching import run_clock_free_batch
    from ..substrate.rng import derive_seed

    batch = run_clock_free_batch(
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
        parameters=parameters,
    )
    return batch_to_experiment_result(name, batch, base_seed=base_seed)


def _variant_tasks(
    n: int,
    epsilon: float,
    skews: Sequence[int],
    trials: int,
    base_seed: int,
    parameters: ProtocolParameters,
    batch: bool,
) -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """The per-variant tasks, in report-row order (synchronous first).

    Per-variant batch seeds are derived from the same experiment names the
    serial path uses, exactly as :func:`repro.exec.batching.run_sweep_batched`
    derives per-point batch seeds.
    """
    shared: Dict[str, Any] = {"n": n, "epsilon": epsilon, "parameters": parameters}
    tasks: List[Tuple[str, Callable[..., Any], Dict[str, Any]]] = []
    if batch:
        batch_shared = {**shared, "trials": trials, "base_seed": base_seed}
        tasks.append(("synchronous", _sync_batch_result, {"name": "E9-synchronous", **batch_shared}))
        for skew in skews:
            tasks.append(
                ("skew", _skew_batch_result, {"name": f"E9-skew-{skew}", "skew": skew, **batch_shared})
            )
        tasks.append(("clock-free", _clock_free_batch_result, {"name": "E9-clock-free", **batch_shared}))
        return tasks

    serial_shared = {"num_trials": trials, "base_seed": base_seed}
    tasks.append(
        (
            "synchronous",
            run_trials,
            {
                "name": "E9-synchronous",
                "trial_fn": functools.partial(_sync_trial, **shared),
                **serial_shared,
            },
        )
    )
    for skew in skews:
        tasks.append(
            (
                "skew",
                run_trials,
                {
                    "name": f"E9-skew-{skew}",
                    "trial_fn": functools.partial(_skew_trial, skew=skew, **shared),
                    **serial_shared,
                },
            )
        )
    tasks.append(
        (
            "clock-free",
            run_trials,
            {
                "name": "E9-clock-free",
                "trial_fn": functools.partial(_clock_free_trial, **shared),
                **serial_shared,
            },
        )
    )
    return tasks


def run(
    n: int = 1000,
    epsilon: float = 0.25,
    skews: Sequence[int] = DEFAULT_SKEWS,
    trials: int = 3,
    base_seed: int = 909,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E9 comparison and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path).  ``runner`` selects the trial-execution
    strategy for the serial path; ``batch=True`` instead simulates all trials
    of every variant at once on ``(R, n)`` grids; ``point_jobs`` spreads the
    independent variant cells over worker processes on either path, with
    results assembled in variant order.
    """
    from ..exec import pool

    plan = resolve_run_options(
        "E9", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    parameters = ProtocolParameters.calibrated(n, epsilon)
    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        # The registry claim is the static Theorem 3.1 statement; the report
        # additionally pins the concrete guard for this run's n.
        claim=(
            "Theorem 3.1: additive O(log^2 n) rounds "
            f"(guard D = 2 log2 n = {default_guard(n)} per phase), unchanged message complexity"
        ),
        config={"n": n, "epsilon": epsilon, "skews": list(skews), "trials": trials},
    )

    tasks = _variant_tasks(n, epsilon, skews, trials, base_seed, parameters, batch)
    results = pool.run_point_tasks(
        [(fn, kwargs) for _, fn, kwargs in tasks],
        point_jobs,
        runner=None if batch else runner,
    )

    sync = results[0]
    sync_rounds = sync.mean("rounds")
    sync_messages = sync.mean("messages")
    report.add_row(
        variant="fully-synchronous",
        skew_D=0,
        mean_rounds=sync_rounds,
        overhead_rounds=0.0,
        predicted_overhead=0.0,
        message_ratio_vs_sync=1.0,
        success_rate=sync.rate("success"),
    )

    num_phases = parameters.stage1.num_phases + parameters.stage2.num_phases

    for skew, skewed in zip(skews, results[1 : 1 + len(skews)]):
        report.add_row(
            variant="bounded-skew",
            skew_D=skew,
            mean_rounds=skewed.mean("rounds"),
            overhead_rounds=skewed.mean("rounds") - sync_rounds,
            predicted_overhead=float(skew * num_phases + skew),
            message_ratio_vs_sync=skewed.mean("messages") / sync_messages,
            success_rate=skewed.rate("success"),
        )

    clock_free = results[-1]
    guard = default_guard(n)
    report.add_row(
        variant="clock-free (activation + guards)",
        skew_D=guard,
        mean_rounds=clock_free.mean("rounds"),
        overhead_rounds=clock_free.mean("rounds") - sync_rounds,
        predicted_overhead=float(guard * num_phases + 3 * guard),
        message_ratio_vs_sync=clock_free.mean("messages") / sync_messages,
        success_rate=clock_free.rate("success"),
    )

    report.add_note(
        f"predicted_overhead ~ D * (number of phases = {num_phases}) plus the activation phase; "
        f"with D = 2 log2 n this is the Theorem 3.1 additive O(log^2 n) term "
        f"(log2(n)^2 = {math.log2(n) ** 2:.0f} for n = {n})"
    )
    report.add_note(
        "message_ratio_vs_sync stays close to 1 for bounded skew (guards are silent rounds); "
        "the clock-free variant adds the activation phase's O(n log n) arbitrary messages."
    )
    return report
