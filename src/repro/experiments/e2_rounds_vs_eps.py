"""Experiment E2 — round complexity versus noise margin (Theorem 2.17).

At fixed ``n``, Theorem 2.17's ``O(log n / eps^2)`` bound says rounds grow
like ``1/eps^2`` as the channel gets noisier.  The driver sweeps ``epsilon``,
measures rounds and success, and fits ``rounds ~ a / eps^2 + b``.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..analysis.scaling import fit_inverse_square_epsilon
from ..analysis.sweeps import run_sweep
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.broadcast import solve_noisy_broadcast
from ..core.theory import broadcast_round_bound
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]

DEFAULT_EPSILONS: Sequence[float] = (0.1, 0.15, 0.2, 0.3, 0.4)


def _broadcast_trial(point: Mapping[str, object], seed: int, _index: int, n: int) -> dict:
    """One noisy-broadcast run at a sweep point (module-level, hence picklable)."""
    result = solve_noisy_broadcast(n=n, epsilon=float(point["epsilon"]), seed=seed)
    return {
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "success": result.success,
        "final_correct_fraction": result.final_correct_fraction,
    }


def run(
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    n: int = 1000,
    trials: int = 5,
    base_seed: int = 202,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E2 sweep and return its report.

    ``config`` and the deprecation-shimmed ``runner`` / ``batch`` /
    ``point_jobs`` keywords select the execution strategy exactly as in
    :func:`repro.experiments.e1_rounds_vs_n.run`.
    """
    plan = resolve_run_options(
        "E2", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    if batch:
        from ..exec.batching import run_broadcast_sweep_batched

        sweep = run_broadcast_sweep_batched(
            name="E2-rounds-vs-eps",
            points=[{"epsilon": epsilon} for epsilon in epsilons],
            trials_per_point=trials,
            base_seed=base_seed,
            defaults={"n": n},
            point_jobs=point_jobs,
        )
    else:
        sweep = run_sweep(
            name="E2-rounds-vs-eps",
            points=[{"epsilon": epsilon} for epsilon in epsilons],
            trial_fn=functools.partial(_broadcast_trial, n=n),
            trials_per_point=trials,
            base_seed=base_seed,
            runner=runner,
            point_jobs=point_jobs,
        )

    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"epsilons": list(epsilons), "n": n, "trials": trials},
    )
    for point, result in sweep:
        epsilon = point.as_dict()["epsilon"]
        rounds = result.scalar_summary("rounds")
        report.add_row(
            n=n,
            epsilon=epsilon,
            mean_rounds=rounds.mean,
            rounds_times_eps_sq=rounds.mean * epsilon * epsilon,
            predicted_scale=broadcast_round_bound(n, epsilon),
            success_rate=result.rate("success"),
            mean_final_fraction=result.mean("final_correct_fraction"),
        )

    eps_values, mean_rounds = sweep.series("epsilon", "rounds")
    fit = fit_inverse_square_epsilon(eps_values, mean_rounds)
    report.add_note(
        f"fit rounds ~ a/eps^2+b: a={fit.slope:.2f}, b={fit.intercept:.1f}, R^2={fit.r_squared:.3f} "
        "(inverse-square growth in eps, matching Theorem 2.17)"
    )
    return report
