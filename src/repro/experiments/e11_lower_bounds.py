"""Experiment E11 — lower-bound sanity checks (Section 1.4).

Section 1.4 derives the ``Omega(log n / eps^2)`` round and
``Omega(n log n / eps^2)`` message lower bounds from Shannon's two-party
argument, and notes that *without relaying* (agents only listen to the
source) completing the broadcast takes ``Theta(n log n / eps^2)`` rounds.

The driver measures both reference points in the simulator:

* the idealised direct-from-source process (every agent receives an
  independent noisy source bit every round): the first round at which every
  agent's running majority is correct scales like ``log n / eps^2`` — this is
  the floor the paper's protocol matches up to constants;
* the silent-wait strategy inside the actual Flip model (only the source
  pushes, one message per round): completing the broadcast takes a factor
  ``~n`` longer, matching ``Theta(n log n / eps^2)``.

With ``batch=True`` each scheme simulates all of its trials at once through
the batched baseline rules (:func:`repro.exec.batching.run_baseline_batch`
with the ``direct-source-reference`` and ``silent-wait`` step rules);
``point_jobs`` additionally spreads the two independent scheme cells over
worker processes on either path.

Reporting convention (never-converged trials)
---------------------------------------------
``mean_rounds`` for the direct-from-source scheme averages
``rounds_to_all_correct`` only over trials whose running majority actually
reached the all-correct state (recorded as ``None`` — checked with
``is None``, never truthiness — when it did not); the column is ``NaN`` when
no trial converged, and the separate ``all_correct_rate`` column reports how
often convergence happened.  Budget-exhausted trials are never silently
counted at their round budget.  The same convention applies in
:mod:`repro.experiments.e7_baselines`.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from ..analysis.experiments import run_trials
from ..api.config import ExecutionConfig, ExecutionPlan, resolve_run_options
from ..core.theory import broadcast_round_bound, silent_wait_round_bound
from ..protocols.direct_source import DirectSourceReference
from ..protocols.silent_wait import SilentWaitBroadcast, default_decision_threshold
from ..substrate.engine import SimulationEngine
from .report import ExperimentReport

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.runner import TrialRunner

__all__ = ["run"]


def _direct_trial(seed: int, _index: int, n: int, epsilon: float) -> dict:
    """One direct-from-source reference run (module-level, hence picklable).

    ``rounds_to_all_correct`` is ``None`` (not the sampling budget) when the
    running majority never went all-correct — see the module docstring.
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = DirectSourceReference().run(engine, correct_opinion=1)
    first_all_correct = result.extra["first_all_correct_round"]
    return {
        "rounds_to_all_correct": first_all_correct,
        "all_correct": first_all_correct is not None,
        "success": result.success,
    }


def _silent_trial(seed: int, _index: int, n: int, epsilon: float, threshold: int) -> dict:
    """One listen-only (silent-wait) run (module-level, hence picklable).

    ``first_two_messages_round`` is ``None`` when no agent ever heard two
    messages (rather than a fake round 0), so it drops out of means instead
    of dragging them towards zero.
    """
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    result = SilentWaitBroadcast(threshold=threshold).run(engine, correct_opinion=1)
    return {
        "rounds": result.rounds,
        "success": result.success,
        "decided_fraction": result.extra["decided_fraction"],
        "first_two_messages_round": result.extra["first_round_with_two_messages"],
    }


def _direct_batch_result(name: str, n: int, epsilon: float, trials: int, base_seed: int) -> "Any":
    """All direct-from-source trials at once (module-level, hence picklable)."""
    from ..exec.batching import batch_to_experiment_result, run_baseline_batch
    from ..substrate.rng import derive_seed

    batch = run_baseline_batch(
        "direct-source-reference",
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
    )
    return batch_to_experiment_result(name, batch, base_seed=base_seed)


def _silent_batch_result(
    name: str, n: int, epsilon: float, trials: int, base_seed: int, threshold: int
) -> "Any":
    """All silent-wait trials at once (module-level, hence picklable).

    The batched rule's extra vector is named after the serial protocol's
    internal marker (``first_round_with_two_messages``); the serial E11
    trial records it as ``first_two_messages_round``, so the batch
    measurements are re-keyed to match before packaging.
    """
    from ..exec.batching import measurements_to_experiment_result, run_baseline_batch
    from ..substrate.rng import derive_seed

    batch = run_baseline_batch(
        "silent-wait",
        n=n,
        epsilon=epsilon,
        num_replicates=trials,
        base_seed=derive_seed(base_seed, name, "batch"),
        threshold=threshold,
    )
    measurements = []
    for index in range(trials):
        trial = batch.measurements(index)
        trial["first_two_messages_round"] = trial.pop("first_round_with_two_messages")
        measurements.append(trial)
    return measurements_to_experiment_result(name, measurements, base_seed=base_seed)


def run(
    n: int = 400,
    epsilon: float = 0.25,
    trials: int = 3,
    base_seed: int = 1111,
    runner: Optional["TrialRunner"] = None,
    batch: bool = False,
    point_jobs: Optional[int] = None,
    config: Optional[Union[ExecutionConfig, ExecutionPlan]] = None,
) -> ExperimentReport:
    """Run the E11 reference measurements and return its report.

    ``config`` carries the execution strategy (the keywords below are the
    deprecation-shimmed legacy path).  ``runner`` selects the trial-execution
    strategy for the serial path; ``batch=True`` instead simulates all trials
    of each scheme at once via the batched baseline rules; ``point_jobs``
    spreads the two independent scheme cells over worker processes on either
    path, with results assembled in scheme order.
    """
    from ..exec import pool

    plan = resolve_run_options(
        "E11", config=config, runner=runner, batch=batch, point_jobs=point_jobs
    )
    runner, batch, point_jobs = plan.runner, plan.batch, plan.point_jobs
    trials = plan.trials if plan.trials is not None else trials
    base_seed = plan.base_seed if plan.base_seed is not None else base_seed
    report = ExperimentReport(
        experiment_id=plan.spec.experiment_id,
        title=plan.spec.title,
        claim=plan.spec.claim,
        config={"n": n, "epsilon": epsilon, "trials": trials},
    )

    threshold = default_decision_threshold(n, epsilon, constant=2.0)

    tasks: List[Tuple[str, Callable[..., Any], Dict[str, Any]]]
    if batch:
        tasks = [
            (
                "direct",
                _direct_batch_result,
                {
                    "name": "E11-direct-source",
                    "n": n,
                    "epsilon": epsilon,
                    "trials": trials,
                    "base_seed": base_seed,
                },
            ),
            (
                "silent",
                _silent_batch_result,
                {
                    "name": "E11-silent-wait",
                    "n": n,
                    "epsilon": epsilon,
                    "trials": trials,
                    "base_seed": base_seed,
                    "threshold": threshold,
                },
            ),
        ]
    else:
        tasks = [
            (
                "direct",
                run_trials,
                {
                    "name": "E11-direct-source",
                    "trial_fn": functools.partial(_direct_trial, n=n, epsilon=epsilon),
                    "num_trials": trials,
                    "base_seed": base_seed,
                },
            ),
            (
                "silent",
                run_trials,
                {
                    "name": "E11-silent-wait",
                    "trial_fn": functools.partial(
                        _silent_trial, n=n, epsilon=epsilon, threshold=threshold
                    ),
                    "num_trials": trials,
                    "base_seed": base_seed,
                },
            ),
        ]

    results = pool.run_point_tasks(
        [(fn, kwargs) for _, fn, kwargs in tasks],
        point_jobs,
        runner=None if batch else runner,
    )
    direct, silent = results

    # Never-converged trials are excluded from the rounds mean (NaN when no
    # trial converged) and reported through all_correct_rate instead; see the
    # module docstring.
    direct_rounds = direct.mean_or("rounds_to_all_correct")
    report.add_row(
        scheme="direct-from-source (idealised)",
        mean_rounds=direct_rounds,
        reference_scale=broadcast_round_bound(n, epsilon),
        ratio_to_reference=direct_rounds / broadcast_round_bound(n, epsilon),
        all_correct_rate=direct.rate("all_correct"),
        success_rate=direct.rate("success"),
    )

    report.add_row(
        scheme="listen-only (silent wait, Flip model)",
        mean_rounds=silent.mean("rounds"),
        reference_scale=silent_wait_round_bound(n, epsilon, constant=2.0),
        ratio_to_reference=silent.mean("rounds") / silent_wait_round_bound(n, epsilon, constant=2.0),
        success_rate=silent.rate("success"),
    )

    report.add_note(
        f"listen-only completion is ~n times slower than the direct reference "
        f"(measured ratio {silent.mean('rounds') / max(direct_rounds, 1):.0f}x, n = {n})"
    )
    report.add_note(
        f"Section 1.6 birthday-paradox check: the first agent to hear two (source) messages appeared at "
        f"round ~{silent.mean_or('first_two_messages_round'):.0f} on average (sqrt(n) = {n ** 0.5:.0f})"
    )
    return report
